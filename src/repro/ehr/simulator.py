"""The CareWeb access-log simulator.

Generates one (or more) weeks of clinical events and the accesses they
cause, plus repeat accesses and an unexplainable residue.  Each access
carries a hidden ground-truth *reason tag* (returned beside the database,
never stored in it) so tests and examples can check what the auditing
system recovers:

===============  ======================================================
tag              meaning
===============  ======================================================
``appt-doctor``  the treating doctor opened the chart around an encounter
``care-team``    a nurse/student/clerk on the patient's team opened it
``consult``      lab/pharmacy/radiology staff served a recorded request
``repeat``       the user re-opened a chart they had opened before
``noise``        residue: data outside the extract (unexplainable)
``snoop``        scripted misuse incident (unexplainable, flagged)
===============  ======================================================
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from ..db.database import Database
from .config import SimulationConfig
from .hospital import build_hospital
from .models import Hospital, Role
from .schema import build_empty_careweb_db

#: Simulation epoch: Monday, Jan 4th 2010 (the paper's log is from
#: January 2010).
EPOCH = dt.datetime(2010, 1, 4)


@dataclass
class SimulationResult:
    """The generated database plus everything the DB doesn't tell you."""

    db: Database
    hospital: Hospital
    config: SimulationConfig
    #: lid -> ground-truth reason tag (see module docstring).
    reasons: dict[int, str] = field(default_factory=dict)

    @property
    def log_size(self) -> int:
        """Number of generated accesses."""
        return len(self.db.table("Log"))

    def lids_tagged(self, *tags: str) -> set[int]:
        """Log ids whose hidden ground-truth reason is among ``tags``."""
        wanted = set(tags)
        return {lid for lid, tag in self.reasons.items() if tag in wanted}

    def summary(self) -> str:
        """One-line description of the generated world and log mix."""
        counts: dict[str, int] = {}
        for tag in self.reasons.values():
            counts[tag] = counts.get(tag, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return (
            f"{self.hospital.summary()}; log={self.log_size} accesses "
            f"({parts})"
        )


def _time_in_day(rng: np.random.Generator, day: int) -> dt.datetime:
    """A clock time on simulated ``day`` (1-based), 07:00-19:00."""
    minutes = int(rng.integers(7 * 60, 19 * 60))
    return EPOCH + dt.timedelta(days=day - 1, minutes=minutes)


def simulate(config: SimulationConfig | None = None) -> SimulationResult:
    """Run the full simulation; deterministic in ``config.seed``."""
    config = config or SimulationConfig()
    rng = np.random.default_rng(config.seed + 1)
    hospital = build_hospital(config)
    db = build_empty_careweb_db()

    users_table = db.table("Users")
    for user in sorted(hospital.users.values(), key=lambda u: u.user_id):
        users_table.insert((user.user_id, user.department))

    appointments: list[tuple] = []
    visits: list[tuple] = []
    documents: list[tuple] = []
    labs: list[tuple] = []
    medications: list[tuple] = []
    radiology: list[tuple] = []
    #: (timestamp, user, patient, reason)
    accesses: list[tuple[dt.datetime, str, str, str]] = []
    #: patients each user has already accessed (for repeat generation);
    #: ``recorded_history`` holds only patients under active *recorded*
    #: care — repeats concentrate there, which is why the paper's Figure 6
    #: (all accesses) shows higher event coverage than Figure 8 (firsts).
    history: dict[str, list[str]] = {}
    history_sets: dict[str, set[str]] = {}
    recorded_history: dict[str, list[str]] = {}

    def record_access(ts: dt.datetime, user: str, patient: str, reason: str) -> None:
        accesses.append((ts, user, patient, reason))
        seen = history_sets.setdefault(user, set())
        if patient not in seen:
            seen.add(patient)
            history.setdefault(user, []).append(patient)
            if patient not in unrecorded_patients:
                recorded_history.setdefault(user, []).append(patient)

    def service_member(team, role: Role) -> str | None:
        for uid in team.service_ids:
            if hospital.users[uid].role is role:
                return uid
        return None

    patients_by_team: dict[int, list[str]] = {}
    for patient in hospital.patients.values():
        patients_by_team.setdefault(patient.team_id, []).append(patient.patient_id)
    for panel in patients_by_team.values():
        panel.sort()

    # Patients whose clinical events fall outside the extract entirely
    # (care continues from un-extracted earlier encounters) — the paper's
    # "we attribute this result in large part to the incomplete data set".
    unrecorded_patients = {
        pid
        for pid in sorted(hospital.patients)
        if rng.random() < config.p_patient_unrecorded
    }

    for day in range(1, config.n_days + 1):
        for team_id in sorted(hospital.teams):
            team = hospital.teams[team_id]
            panel = patients_by_team.get(team_id, [])
            if not panel:
                continue
            n_enc = rng.binomial(len(panel), config.daily_encounter_rate)
            if n_enc == 0:
                continue
            encounter_patients = rng.choice(panel, size=n_enc, replace=False)
            for patient_id in encounter_patients:
                record = hospital.patients[str(patient_id)]
                if rng.random() < 0.8:
                    doctor = record.pcp
                else:
                    doctor = str(rng.choice(team.doctor_ids))
                ts = _time_in_day(rng, day)
                dropout = (
                    rng.random() < config.p_event_dropout
                    or str(patient_id) in unrecorded_patients
                )

                # ---- clinical event rows (data sets A and B) ----------
                if not dropout:
                    appointments.append((str(patient_id), doctor, ts))
                if rng.random() < config.p_visit and not dropout:
                    visits.append((str(patient_id), doctor, ts))
                if rng.random() < config.p_document and not dropout:
                    author = (
                        doctor
                        if rng.random() < 0.7 or not team.nurse_ids
                        else str(rng.choice(team.nurse_ids))
                    )
                    documents.append((str(patient_id), author, ts))
                lab_performer = med_signer = med_admin = rad_radiologist = None
                if rng.random() < config.p_labs:
                    lab_performer = service_member(team, Role.LAB_TECH)
                    if lab_performer and not dropout:
                        labs.append((str(patient_id), doctor, lab_performer, ts))
                if rng.random() < config.p_medication:
                    med_signer = service_member(team, Role.PHARMACIST)
                    med_admin = (
                        str(rng.choice(team.nurse_ids)) if team.nurse_ids else None
                    )
                    if med_signer and med_admin and not dropout:
                        medications.append(
                            (str(patient_id), doctor, med_signer, med_admin, ts)
                        )
                if rng.random() < config.p_radiology:
                    rad_radiologist = service_member(team, Role.RADIOLOGIST)
                    if rad_radiologist and not dropout:
                        radiology.append(
                            (str(patient_id), doctor, rad_radiologist, ts)
                        )

                # ---- accesses caused by the encounter ------------------
                lo, hi = config.doctor_accesses_per_encounter
                for _ in range(int(rng.integers(lo, hi + 1))):
                    record_access(
                        _time_in_day(rng, day), doctor, str(patient_id), "appt-doctor"
                    )
                for nurse in team.nurse_ids:
                    if rng.random() < config.p_nurse_access:
                        record_access(
                            _time_in_day(rng, day), nurse, str(patient_id), "care-team"
                        )
                for student in team.student_ids:
                    if rng.random() < config.p_student_access:
                        record_access(
                            _time_in_day(rng, day),
                            student,
                            str(patient_id),
                            "care-team",
                        )
                for clerk in team.clerk_ids:
                    if rng.random() < config.p_clerk_access:
                        record_access(
                            _time_in_day(rng, day), clerk, str(patient_id), "care-team"
                        )
                for consult in (lab_performer, med_signer, med_admin, rad_radiologist):
                    if consult and rng.random() < config.p_consult_access:
                        record_access(
                            _time_in_day(rng, day), consult, str(patient_id), "consult"
                        )

        # ---- repeat accesses: users revisit charts they know ----------
        for user in sorted(history):
            known = history[user]
            known_recorded = recorded_history.get(user, [])
            n_rep = rng.poisson(config.repeat_rate_per_user_day)
            for _ in range(min(n_rep, len(known) * 2)):
                if known_recorded and rng.random() < 0.85:
                    pool = known_recorded
                else:
                    pool = known
                patient = pool[int(rng.integers(0, len(pool)))]
                record_access(_time_in_day(rng, day), user, patient, "repeat")

    # ---- unexplainable residue ----------------------------------------
    all_users = sorted(hospital.users)
    all_patients = sorted(hospital.patients)
    n_noise = int(len(accesses) * config.noise_fraction)
    for _ in range(n_noise):
        user = all_users[int(rng.integers(0, len(all_users)))]
        patient = all_patients[int(rng.integers(0, len(all_patients)))]
        day = int(rng.integers(1, config.n_days + 1))
        record_access(_time_in_day(rng, day), user, patient, "noise")

    # ---- scripted snooping incidents (misuse-detection demo) ----------
    for _ in range(config.n_snooping_incidents):
        user_id = all_users[int(rng.integers(0, len(all_users)))]
        user = hospital.users[user_id]
        strangers = [
            pid
            for pid in all_patients
            if hospital.patients[pid].team_id not in user.team_ids
        ]
        if not strangers:
            continue
        patient = strangers[int(rng.integers(0, len(strangers)))]
        day = int(rng.integers(1, config.n_days + 1))
        record_access(_time_in_day(rng, day), user_id, patient, "snoop")

    # ---- materialize tables --------------------------------------------
    accesses.sort(key=lambda a: (a[0], a[1], a[2]))
    result = SimulationResult(db=db, hospital=hospital, config=config)
    log_table = db.table("Log")
    for lid, (ts, user, patient, reason) in enumerate(accesses, start=1):
        log_table.insert((lid, ts, user, patient))
        result.reasons[lid] = reason
    db.table("Appointments").insert_many(appointments)
    db.table("Visits").insert_many(visits)
    db.table("Documents").insert_many(documents)
    db.table("Labs").insert_many(labs)
    db.table("Medications").insert_many(medications)
    db.table("Radiology").insert_many(radiology)
    return result
