"""Hospital topology generation: departments, care teams, users, patients.

Department codes deliberately echo the paper's Figures 10-11: a clinical
specialty has *separate* physician and nursing codes ("as we found in our
data set, the nurse and doctor are assigned different department codes
based on their job title"), and service departments (Radiology, Pathology,
Pharmacy, ...) span many teams — which is why department codes alone are a
poor proxy for collaborative groups (Figure 12's "Same Dept." bars).
"""

from __future__ import annotations

import numpy as np

from .config import SimulationConfig
from .models import CareTeam, Hospital, PatientRecord, Role, UserRecord

#: Clinical specialties: (team name, physician dept code, nursing dept code).
SPECIALTIES = [
    ("Cancer Center", "UMHS Int Med - Hem/Onc (Physicians)", "Nursing - Oncology"),
    ("Psychiatric Care", "UMHS Psychiatry (Physicians)", "Nursing - Psych 9C/D"),
    ("Pediatrics", "Pediatrics (Physicians)", "Nursing - Pediatrics"),
    ("Cardiology", "Cardiology (Physicians)", "Nursing - Cardiology"),
    ("Emergency", "Emergency Medicine (Physicians)", "Nursing - Emergency"),
    ("Surgery", "General Surgery (Physicians)", "Nursing - Surgery"),
    ("Obstetrics", "Obstetrics (Physicians)", "Nursing - Obstetrics"),
    ("Neurology", "Neurology (Physicians)", "Nursing - Neurology"),
    ("Internal Medicine", "Internal Medicine (Physicians)", "Nursing - Int Med"),
    ("Orthopedics", "Orthopedics (Physicians)", "Nursing - Orthopedics"),
    ("Dermatology", "Dermatology (Physicians)", "Nursing - Dermatology"),
    ("Geriatrics", "Geriatrics (Physicians)", "Nursing - Geriatrics"),
]

DEPT_RADIOLOGY = "Radiology"
DEPT_PATHOLOGY = "Pathology"
DEPT_PHARMACY = "Pharmacy"
DEPT_LAB = "Clinical Labs"
DEPT_STUDENTS = "Medical Students"
DEPT_CLERKS = "Health Information Management"


def _randint(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    lo, hi = bounds
    return int(rng.integers(lo, hi + 1))


def build_hospital(config: SimulationConfig) -> Hospital:
    """Generate the full topology deterministically from ``config.seed``."""
    rng = np.random.default_rng(config.seed)
    hospital = Hospital()
    next_uid = 0

    def new_user(role: Role, department: str, team_ids: tuple[int, ...]) -> str:
        nonlocal next_uid
        user_id = f"u{next_uid:04d}"
        next_uid += 1
        hospital.users[user_id] = UserRecord(
            user_id=user_id, role=role, department=department, team_ids=team_ids
        )
        return user_id

    # --- service pools (attached to teams below) ----------------------
    service_pools: dict[Role, list[str]] = {
        Role.RADIOLOGIST: [
            new_user(Role.RADIOLOGIST, DEPT_RADIOLOGY, ())
            for _ in range(config.n_radiologists)
        ],
        Role.PATHOLOGIST: [
            new_user(Role.PATHOLOGIST, DEPT_PATHOLOGY, ())
            for _ in range(config.n_pathologists)
        ],
        Role.PHARMACIST: [
            new_user(Role.PHARMACIST, DEPT_PHARMACY, ())
            for _ in range(config.n_pharmacists)
        ],
        Role.LAB_TECH: [
            new_user(Role.LAB_TECH, DEPT_LAB, ())
            for _ in range(config.n_lab_techs)
        ],
    }

    # --- clinical teams ------------------------------------------------
    service_assignment: dict[str, list[int]] = {
        uid: [] for pool in service_pools.values() for uid in pool
    }
    for team_id in range(config.n_teams):
        name, phys_dept, nurse_dept = SPECIALTIES[team_id % len(SPECIALTIES)]
        if team_id >= len(SPECIALTIES):
            name = f"{name} {team_id // len(SPECIALTIES) + 1}"
        doctors = tuple(
            new_user(Role.DOCTOR, phys_dept, (team_id,))
            for _ in range(_randint(rng, config.doctors_per_team))
        )
        nurses = tuple(
            new_user(Role.NURSE, nurse_dept, (team_id,))
            for _ in range(_randint(rng, config.nurses_per_team))
        )
        students = tuple(
            new_user(Role.STUDENT, DEPT_STUDENTS, (team_id,))
            for _ in range(_randint(rng, config.students_per_team))
        )
        clerks = tuple(
            new_user(Role.CLERK, DEPT_CLERKS, (team_id,))
            for _ in range(_randint(rng, config.clerks_per_team))
        )
        # attach one service user of each kind, preferring the least-loaded
        attached: list[str] = []
        for pool in service_pools.values():
            pool_sorted = sorted(
                pool, key=lambda uid: (len(service_assignment[uid]), uid)
            )
            capacity = _randint(rng, config.teams_per_service_user)
            candidates = [
                uid
                for uid in pool_sorted
                if len(service_assignment[uid]) < capacity
            ] or pool_sorted
            choice = candidates[0]
            service_assignment[choice].append(team_id)
            attached.append(choice)
        hospital.teams[team_id] = CareTeam(
            team_id=team_id,
            name=name,
            specialty=phys_dept,
            doctor_ids=doctors,
            nurse_ids=nurses,
            student_ids=students,
            clerk_ids=clerks,
            service_ids=tuple(attached),
        )

    # record final team memberships on the service users
    for uid, team_ids in service_assignment.items():
        old = hospital.users[uid]
        hospital.users[uid] = UserRecord(
            user_id=uid,
            role=old.role,
            department=old.department,
            team_ids=tuple(team_ids),
        )

    # --- patients -------------------------------------------------------
    next_pid = 0
    for team_id, team in hospital.teams.items():
        for _ in range(_randint(rng, config.patients_per_team)):
            patient_id = f"p{next_pid:05d}"
            next_pid += 1
            pcp = team.doctor_ids[int(rng.integers(0, len(team.doctor_ids)))]
            hospital.patients[patient_id] = PatientRecord(
                patient_id=patient_id, team_id=team_id, pcp=pcp
            )
    return hospital
