"""The CareWeb-like relational schema and its explanation graph.

Tables mirror the paper's data sets A and B (Section 5.2):

* ``Log(Lid, Date, User, Patient)`` — the access log;
* data set A: ``Appointments``, ``Visits``, ``Documents``;
* data set B: ``Labs``, ``Medications``, ``Radiology`` (the consult-request
  tables added when radiology/pathology/pharmacy accesses proved
  unexplainable from data set A alone);
* ``Users(User, Department)`` — the paper's 291 descriptive department
  codes;
* ``Groups(Group_Depth, Group_id, User)`` — added by the Section 4
  pipeline.

The explanation graph declares the administrator relationships the paper
uses: every patient-typed column is joinable to every other (the paper's
key/FK patient links), every user-typed column to every other (the paper
routed these through a free caregiver/audit id mapping table; we model the
equivalent direct relationships), self-joins on ``Groups.Group_id`` and on
``Users.Department`` (the department-code self-join of template (B)).
"""

from __future__ import annotations

from itertools import combinations

from ..core.edges import SchemaAttr
from ..core.graph import SchemaGraph
from ..db.backend import AnyDatabase
from ..db.database import Database
from ..db.schema import ColumnType, ForeignKey, TableSchema

#: Every (table, column) holding a patient id.
PATIENT_COLUMNS: tuple[tuple[str, str], ...] = (
    ("Log", "Patient"),
    ("Appointments", "Patient"),
    ("Visits", "Patient"),
    ("Documents", "Patient"),
    ("Labs", "Patient"),
    ("Medications", "Patient"),
    ("Radiology", "Patient"),
)

#: Every (table, column) holding a user id (Groups included when present).
USER_COLUMNS: tuple[tuple[str, str], ...] = (
    ("Log", "User"),
    ("Appointments", "Doctor"),
    ("Visits", "Doctor"),
    ("Documents", "Author"),
    ("Labs", "Requester"),
    ("Labs", "Performer"),
    ("Medications", "Requester"),
    ("Medications", "Signer"),
    ("Medications", "Administrator"),
    ("Radiology", "Requester"),
    ("Radiology", "Radiologist"),
)

#: Tables belonging to the paper's data set A / data set B.
DATASET_A = ("Appointments", "Visits", "Documents")
DATASET_B = ("Labs", "Medications", "Radiology")
EVENT_TABLES = DATASET_A + DATASET_B


def careweb_schemas() -> list[TableSchema]:
    """All table definitions, in creation (FK-dependency) order."""
    users = TableSchema.build("Users", ["User", "Department"], primary_key=["User"])

    def fk(column: str) -> ForeignKey:
        return ForeignKey(column, "Users", "User")

    log = TableSchema.build(
        "Log",
        [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
        primary_key=["Lid"],
        foreign_keys=[fk("User")],
    )
    appointments = TableSchema.build(
        "Appointments",
        ["Patient", "Doctor", ("Date", ColumnType.DATE)],
        foreign_keys=[fk("Doctor")],
    )
    visits = TableSchema.build(
        "Visits",
        ["Patient", "Doctor", ("Date", ColumnType.DATE)],
        foreign_keys=[fk("Doctor")],
    )
    documents = TableSchema.build(
        "Documents",
        ["Patient", "Author", ("Date", ColumnType.DATE)],
        foreign_keys=[fk("Author")],
    )
    labs = TableSchema.build(
        "Labs",
        ["Patient", "Requester", "Performer", ("Date", ColumnType.DATE)],
        foreign_keys=[fk("Requester"), fk("Performer")],
    )
    medications = TableSchema.build(
        "Medications",
        [
            "Patient",
            "Requester",
            "Signer",
            "Administrator",
            ("Date", ColumnType.DATE),
        ],
        foreign_keys=[fk("Requester"), fk("Signer"), fk("Administrator")],
    )
    radiology = TableSchema.build(
        "Radiology",
        ["Patient", "Requester", "Radiologist", ("Date", ColumnType.DATE)],
        foreign_keys=[fk("Requester"), fk("Radiologist")],
    )
    return [users, log, appointments, visits, documents, labs, medications, radiology]


def build_empty_careweb_db(name: str = "careweb") -> Database:
    """A database with every CareWeb-shaped table, empty."""
    db = Database(name)
    for schema in careweb_schemas():
        db.create_table(schema)
    return db


def build_careweb_graph(
    db: AnyDatabase,
    allow_log_self_joins: bool = False,
    max_tables_uncounted: tuple[str, ...] = (),
) -> SchemaGraph:
    """The mining edge set for a CareWeb-shaped database.

    ``allow_log_self_joins`` additionally permits self-joins on
    ``Log.Patient`` and ``Log.User``, which makes the (vacuously supported)
    undecorated repeat-access template minable; the paper's configuration —
    and our default — leaves them to hand-crafted decorated templates.
    """
    graph = SchemaGraph(db, uncounted_tables=max_tables_uncounted)

    patient_columns = [
        (t, c) for t, c in PATIENT_COLUMNS if db.has_table(t)
    ]
    user_columns = [(t, c) for t, c in USER_COLUMNS if db.has_table(t)]
    if db.has_table("Groups"):
        user_columns.append(("Groups", "User"))

    for (t1, c1), (t2, c2) in combinations(patient_columns, 2):
        if t1 != t2:
            graph.add_relationship(SchemaAttr(t1, c1), SchemaAttr(t2, c2))
    for (t1, c1), (t2, c2) in combinations(user_columns, 2):
        if t1 != t2:
            graph.add_relationship(SchemaAttr(t1, c1), SchemaAttr(t2, c2))

    if db.has_table("Groups"):
        graph.allow_self_join("Groups", "Group_id")
    if db.has_table("Users"):
        graph.allow_self_join("Users", "Department")
    if allow_log_self_joins:
        graph.allow_self_join("Log", "Patient")
        graph.allow_self_join("Log", "User")
    return graph
