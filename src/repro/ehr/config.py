"""Configuration of the synthetic CareWeb-like hospital simulation.

The real study (paper Section 5.2) uses one de-identified week of CareWeb
data: ~4.5M accesses, 124K patients, 12K users, 51K appointments, 3K
visits, 76K documents, 45K labs, 242K medications, 17K radiology records,
291 department codes, user-patient density ~0.0003.  That data cannot be
shipped, so :mod:`repro.ehr` generates a miniature hospital whose *shape*
matches the properties the paper's results depend on:

* almost every access traces to a clinical event recorded in the database
  (Figure 6's ~97% "All" bar), with a small unexplainable residue;
* repeat accesses form the majority of the log;
* events reference only the primary doctor, while care-team colleagues
  (nurses, consult services) also access the record — which is exactly why
  hand-crafted "w/Dr." templates explain only a small share of *first*
  accesses (Figure 9) until collaborative groups are added (Figure 12);
* collaborative teams span department codes (the paper's Cancer Center
  group mixes Hem/Onc physicians, radiology, pathology, pharmacy, ...);
* user-patient density is very low, which is what makes short mined
  templates precise against a random fake log (Figure 14).

All rates below are per-encounter/day probabilities; sizes default to a
roughly 1:100 scale-down of CareWeb.  Every run is fully determined by
``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the synthetic hospital; see module docstring for intent."""

    seed: int = 7
    #: Simulated days; the paper uses one week (7 days), training on days
    #: 1-6 and testing on day 7.
    n_days: int = 7

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    n_teams: int = 16
    doctors_per_team: tuple[int, int] = (2, 4)
    nurses_per_team: tuple[int, int] = (4, 7)
    students_per_team: tuple[int, int] = (1, 2)
    clerks_per_team: tuple[int, int] = (1, 2)
    #: Service staff shared across teams (radiology/pathology/pharmacy/lab).
    n_radiologists: int = 10
    n_pathologists: int = 8
    n_pharmacists: int = 10
    n_lab_techs: int = 10
    #: How many teams each service user works with.
    teams_per_service_user: tuple[int, int] = (2, 4)
    patients_per_team: tuple[int, int] = (150, 250)

    # ------------------------------------------------------------------
    # clinical events per day
    # ------------------------------------------------------------------
    #: Fraction of a team's patient panel encountered per day.
    daily_encounter_rate: float = 0.07
    p_visit: float = 0.30
    p_document: float = 0.55
    p_labs: float = 0.35
    p_medication: float = 0.50
    p_radiology: float = 0.20
    #: Chance an encounter's appointment row is *missing* from the extract
    #: (the paper's incomplete-data effect: "appointments outside of the
    #: study's timeframe were not considered").
    p_event_dropout: float = 0.05
    #: Chance a *patient's* events are entirely absent from the extract
    #: even though staff access the chart (e.g. care driven by last
    #: month's encounter).  Directly produces the paper's ~25% of first
    #: accesses with no corresponding event (Figure 8).
    p_patient_unrecorded: float = 0.22

    # ------------------------------------------------------------------
    # access behaviour
    # ------------------------------------------------------------------
    doctor_accesses_per_encounter: tuple[int, int] = (1, 3)
    #: Probability each team nurse opens the chart around an encounter.
    p_nurse_access: float = 0.55
    p_student_access: float = 0.35
    p_clerk_access: float = 0.25
    #: Consult staff (lab performer / med signer / radiologist) access their
    #: referenced charts with this probability.
    p_consult_access: float = 0.85
    #: Mean number of *repeat* accesses each active user makes per day to
    #: patients they already know (drives the repeat-majority shape).
    repeat_rate_per_user_day: float = 11.0
    #: Fraction of accesses that are inexplicable noise (snooping or data
    #: missing from the extract): uniform random user-patient pairs.
    noise_fraction: float = 0.015

    # ------------------------------------------------------------------
    # misuse-detection demo
    # ------------------------------------------------------------------
    #: Scripted snooping incidents (a user opens the chart of an unrelated
    #: patient), tagged in the ground truth for the examples.
    n_snooping_incidents: int = 4

    def scaled(self, **overrides) -> "SimulationConfig":
        """A copy with selected fields overridden."""
        return replace(self, **overrides)

    @staticmethod
    def small(seed: int = 7) -> "SimulationConfig":
        """Test-sized hospital (~60 users, ~300 patients, ~2-3K accesses)."""
        return SimulationConfig(
            seed=seed,
            n_teams=4,
            doctors_per_team=(1, 2),
            nurses_per_team=(2, 3),
            students_per_team=(0, 1),
            clerks_per_team=(1, 1),
            n_radiologists=3,
            n_pathologists=2,
            n_pharmacists=3,
            n_lab_techs=3,
            teams_per_service_user=(1, 2),
            patients_per_team=(40, 60),
            daily_encounter_rate=0.08,
        )

    @staticmethod
    def tiny(seed: int = 7) -> "SimulationConfig":
        """Micro hospital for fast unit tests (~25 users, ~80 patients)."""
        return SimulationConfig(
            seed=seed,
            n_teams=2,
            doctors_per_team=(1, 2),
            nurses_per_team=(2, 2),
            students_per_team=(0, 0),
            clerks_per_team=(1, 1),
            n_radiologists=2,
            n_pathologists=1,
            n_pharmacists=2,
            n_lab_techs=2,
            teams_per_service_user=(1, 2),
            patients_per_team=(30, 50),
            daily_encounter_rate=0.08,
            n_snooping_incidents=2,
        )

    @staticmethod
    def benchmark(seed: int = 7) -> "SimulationConfig":
        """Benchmark-sized hospital (~170 users, ~1.7K patients, ~25K
        accesses) — large enough for the paper's shapes to be stable,
        small enough that full mining sweeps finish in minutes."""
        return SimulationConfig(seed=seed)
