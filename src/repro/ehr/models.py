"""Entity models of the synthetic hospital.

Only the *behavioural* structure lives here (who works with whom, who
treats whom); the relational rows the auditing system sees are generated
from these by :mod:`repro.ehr.simulator`.  Crucially, team membership —
the ground truth the collaborative-group inference of Section 4 tries to
recover — is **never** written into the database, mirroring the paper's
observation that "Dr. Dave and Nurse Nick work together, but this
information is not recorded anywhere."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Role(Enum):
    """Job roles of hospital employees."""
    DOCTOR = "doctor"
    NURSE = "nurse"
    STUDENT = "student"
    CLERK = "clerk"
    RADIOLOGIST = "radiologist"
    PATHOLOGIST = "pathologist"
    PHARMACIST = "pharmacist"
    LAB_TECH = "lab_tech"


@dataclass(frozen=True)
class UserRecord:
    """One hospital employee."""

    user_id: str
    role: Role
    department: str
    team_ids: tuple[int, ...]

    def is_clinical(self) -> bool:
        """True for direct-care roles (doctor/nurse/student)."""
        return self.role in (Role.DOCTOR, Role.NURSE, Role.STUDENT)


@dataclass(frozen=True)
class PatientRecord:
    """One patient, attached to a primary care team and physician."""

    patient_id: str
    team_id: int
    pcp: str  # primary care physician's user id


@dataclass(frozen=True)
class CareTeam:
    """A collaborative group: the clinical core plus attached services.

    This is the latent structure behind the access log; the paper's
    Figures 10-11 show such groups (Cancer Center, Psychiatric Care)
    recovered from access patterns alone.
    """

    team_id: int
    name: str
    specialty: str
    doctor_ids: tuple[str, ...]
    nurse_ids: tuple[str, ...]
    student_ids: tuple[str, ...]
    clerk_ids: tuple[str, ...]
    service_ids: tuple[str, ...]  # radiologist/pathologist/pharmacist/lab

    def members(self) -> tuple[str, ...]:
        """Every member's user id, clinical core first."""
        return (
            self.doctor_ids
            + self.nurse_ids
            + self.student_ids
            + self.clerk_ids
            + self.service_ids
        )


@dataclass
class Hospital:
    """The generated topology: users, patients, teams, departments."""

    users: dict[str, UserRecord] = field(default_factory=dict)
    patients: dict[str, PatientRecord] = field(default_factory=dict)
    teams: dict[int, CareTeam] = field(default_factory=dict)

    def team_of_patient(self, patient_id: str) -> CareTeam:
        """The care team responsible for a patient."""
        return self.teams[self.patients[patient_id].team_id]

    def department_of(self, user_id: str) -> str:
        """Department code of one employee."""
        return self.users[user_id].department

    def departments(self) -> set[str]:
        """All department codes present in the hospital."""
        return {u.department for u in self.users.values()}

    def users_by_role(self, role: Role) -> list[str]:
        """Sorted user ids holding one role."""
        return sorted(u.user_id for u in self.users.values() if u.role is role)

    def summary(self) -> str:
        """One-line size summary of the topology."""
        return (
            f"hospital: {len(self.users)} users, {len(self.patients)} "
            f"patients, {len(self.teams)} teams, "
            f"{len(self.departments())} departments"
        )
