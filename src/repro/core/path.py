"""Paths through the explanation graph (paper Definitions 1-4).

A :class:`Path` is a chain of join edges over *tuple variables*.  Tuple
variable 0 is always the audited log row ``L``; a complete explanation
starts at ``L.<start>`` (the data accessed) and terminates back at
``L.<end>`` (the accessing user).  Intra-tuple-variable movement (arriving
at ``A.Patient`` and leaving from ``A.Doctor``) is implicit, exactly as in
the paper's graph model where attributes of one tuple variable are fully
connected.

Structural invariants (the paper's *restricted simple path* rules,
Section 3.2):

* the chain is connected: step *i+1* leaves the tuple variable step *i*
  arrived at;
* every tuple variable is entered at most once and exited at most once,
  so each contributes at most two nodes (entry and exit attribute);
* a table may host at most two tuple variables, and only when a permitted
  self-join edge connects them;
* otherwise each step joins a previously untraversed table, until the
  path closes back at the log's end attribute.

Paths are immutable; extension and bridging return new objects (or
``None`` when the result would violate an invariant), which lets the
miners keep frontiers of shared-structure paths cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterable, Sequence

from ..db.query import AttrRef, Condition, ConjunctiveQuery, TupleVar, canonical_query_signature
from .edges import EdgeKind, SchemaEdge
from .graph import SchemaGraph


@dataclass(frozen=True)
class PathStep:
    """One traversed join edge, instantiated between two tuple variables."""

    edge: SchemaEdge
    src_var: int
    dst_var: int

    @property
    def src_attr(self) -> str:
        """Attribute the step leaves from."""
        return self.edge.src.attr

    @property
    def dst_attr(self) -> str:
        """Attribute the step arrives at."""
        return self.edge.dst.attr


@dataclass(frozen=True)
class Path:
    """An immutable chain of :class:`PathStep` over tuple variables.

    ``var_tables[i]`` is the table of tuple variable *i*; variable 0 is the
    log row being explained.  ``anchored_start`` means the chain begins at
    ``L.<start_attr>``; ``anchored_end`` means it terminates at
    ``L.<end_attr>``.  A path with both anchors is an explanation template
    skeleton (paper Definition 1).
    """

    log_table: str
    start_attr: str
    end_attr: str
    var_tables: tuple[str, ...]
    steps: tuple[PathStep, ...]
    anchored_start: bool
    anchored_end: bool

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def forward_seed(graph: SchemaGraph, edge: SchemaEdge) -> "Path | None":
        """A length-1 path from the start attribute along ``edge``
        (Algorithm 1, line 2)."""
        if edge.src != graph.start:
            return None
        base = Path(
            log_table=graph.log_table,
            start_attr=graph.start.attr,
            end_attr=graph.end.attr,
            var_tables=(graph.log_table,),
            steps=(),
            anchored_start=True,
            anchored_end=False,
        )
        if edge.dst == graph.end:
            # degenerate one-edge explanation Log.start = Log.end
            step = PathStep(edge, 0, 0)
            return replace(base, steps=(step,), anchored_end=True)
        step = PathStep(edge, 0, 1)
        return replace(
            base,
            var_tables=(graph.log_table, edge.dst.table),
            steps=(step,),
        )

    @staticmethod
    def backward_seed(graph: SchemaGraph, edge: SchemaEdge) -> "Path | None":
        """A length-1 path terminating at the end attribute along ``edge``
        (two-way algorithm seeding)."""
        if edge.dst != graph.end:
            return None
        base = Path(
            log_table=graph.log_table,
            start_attr=graph.start.attr,
            end_attr=graph.end.attr,
            var_tables=(graph.log_table,),
            steps=(),
            anchored_start=False,
            anchored_end=True,
        )
        if edge.src == graph.start:
            step = PathStep(edge, 0, 0)
            return replace(base, steps=(step,), anchored_start=True)
        step = PathStep(edge, 1, 0)
        return replace(
            base,
            var_tables=(graph.log_table, edge.src.table),
            steps=(step,),
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of join edges (the paper's path length; Figure 13's
        'length corresponds to the number of joins')."""
        return len(self.steps)

    @property
    def is_explanation(self) -> bool:
        """True when the path connects Log.start back to Log.end
        (Definition 1)."""
        return self.anchored_start and self.anchored_end

    def tables(self) -> set[str]:
        """Distinct tables hosting this path's tuple variables."""
        return set(self.var_tables)

    def counted_tables(self, graph: SchemaGraph) -> int:
        """Distinct tables charged against the *T* budget (self-joined
        tables count once; ``graph.uncounted_tables`` are free)."""
        return graph.counted_tables(self.var_tables)

    def last_var(self) -> int:
        """Index of the tuple variable the chain currently ends in."""
        return self.steps[-1].dst_var if self.steps else 0

    def first_var(self) -> int:
        """Index of the tuple variable the chain currently starts from."""
        return self.steps[0].src_var if self.steps else 0

    def last_table(self) -> str:
        """Table of the chain's current last tuple variable."""
        return self.var_tables[self.last_var()]

    def first_table(self) -> str:
        """Table of the chain's current first tuple variable."""
        return self.var_tables[self.first_var()]

    # ------------------------------------------------------------------
    # extension (one-way / two-way mining)
    # ------------------------------------------------------------------
    def _admit_new_var(self, edge: SchemaEdge, table: str) -> bool:
        """May ``table`` host a new tuple variable, arriving via ``edge``?

        A fresh table is always admissible; a revisited table is only
        admissible through a permitted self-join edge, and only once
        (at most two tuple variables per table).
        """
        occurrences = self.var_tables.count(table)
        if occurrences == 0:
            return True
        return edge.kind is EdgeKind.SELF_JOIN and occurrences < 2

    def extend_forward(self, edge: SchemaEdge) -> "Path | None":
        """Append ``edge`` at the right end (Algorithm 1, lines 7-9).

        Returns ``None`` unless the result is a restricted simple path;
        closing back at the log's end attribute produces an explanation.
        """
        if self.anchored_end or not self.steps:
            return None
        last = self.last_var()
        if edge.src.table != self.var_tables[last]:
            return None  # not connected
        if (
            last != 0
            and self.var_tables[last] == self.log_table
            and edge.kind is not EdgeKind.SELF_JOIN
        ):
            # A second log tuple variable may only connect through permitted
            # log self-joins; anything else pads a template with a redundant
            # log hop and breaks forward/backward symmetry.
            return None
        if edge.dst.table == self.log_table and edge.dst.attr == self.end_attr:
            if not self.anchored_start:
                return None  # would close a chain that never left the log row
            step = PathStep(edge, last, 0)
            return replace(
                self, steps=self.steps + (step,), anchored_end=True
            )
        if not self._admit_new_var(edge, edge.dst.table):
            return None
        new_index = len(self.var_tables)
        step = PathStep(edge, last, new_index)
        return replace(
            self,
            var_tables=self.var_tables + (edge.dst.table,),
            steps=self.steps + (step,),
        )

    def extend_backward(self, edge: SchemaEdge) -> "Path | None":
        """Prepend ``edge`` at the left end (two-way algorithm)."""
        if self.anchored_start or not self.steps:
            return None
        first = self.first_var()
        if edge.dst.table != self.var_tables[first]:
            return None
        if (
            first != 0
            and self.var_tables[first] == self.log_table
            and edge.kind is not EdgeKind.SELF_JOIN
        ):
            return None  # mirror of the forward second-log-var rule
        if edge.src.table == self.log_table and edge.src.attr == self.start_attr:
            if not self.anchored_end:
                return None
            step = PathStep(edge, 0, first)
            return replace(
                self, steps=(step,) + self.steps, anchored_start=True
            )
        if not self._admit_new_var(edge, edge.src.table):
            return None
        new_index = len(self.var_tables)
        step = PathStep(edge, new_index, first)
        return replace(
            self,
            var_tables=self.var_tables + (edge.src.table,),
            steps=(step,) + self.steps,
        )

    # ------------------------------------------------------------------
    # bridging (Section 3.3.1)
    # ------------------------------------------------------------------
    @staticmethod
    def bridge(forward: "Path", backward: "Path") -> "Path | None":
        """Join a start-anchored path to an end-anchored path whose first
        edge *is* the forward path's last edge (the shared *bridge edge*).

        The combined length is ``len(forward) + len(backward) - 1``.
        Returns ``None`` when the paths do not share a bridge edge or the
        merge violates a structural invariant.
        """
        if not (forward.anchored_start and not forward.anchored_end):
            return None
        if not (backward.anchored_end and not backward.anchored_start):
            return None
        if not forward.steps or not backward.steps:
            return None
        if forward.steps[-1].edge != backward.steps[0].edge:
            return None
        # Merge: the forward path's last var is identified with the
        # backward path's first *destination* var (the bridge edge's dst).
        shared_fwd_var = forward.steps[-1].dst_var
        shared_bwd_var = backward.steps[0].dst_var
        return Path._merge(
            forward, backward, backward.steps[1:], shared_bwd_var, shared_fwd_var
        )

    @staticmethod
    def bridge_with_middle(
        forward: "Path", middle: Sequence[SchemaEdge], backward: "Path"
    ) -> "Path | None":
        """Connect a start-anchored path to an end-anchored path through
        zero or more *middle* edges (paper Section 3.3.1, the ``n >= 2l``
        case where the algorithm 'must consider all combinations of edges
        from the schema to bridge these paths').

        With an empty ``middle`` the forward path's last tuple variable is
        identified with the backward path's first tuple variable (their
        tables must match); each middle edge introduces one intermediate
        variable.
        """
        if not (forward.anchored_start and not forward.anchored_end):
            return None
        if not (backward.anchored_end and not backward.anchored_start):
            return None
        current = forward
        for edge in middle:
            current = current.extend_forward(edge)
            if current is None:
                return None
        shared_bwd_var = backward.steps[0].src_var
        shared_fwd_var = current.last_var()
        if current.var_tables[shared_fwd_var] != backward.var_tables[shared_bwd_var]:
            return None
        return Path._merge(
            current, backward, backward.steps, shared_bwd_var, shared_fwd_var
        )

    @staticmethod
    def _merge(
        forward: "Path",
        backward: "Path",
        backward_steps: Sequence[PathStep],
        shared_bwd_var: int,
        shared_fwd_var: int,
    ) -> "Path | None":
        """Renumber ``backward_steps`` into ``forward``'s variable space and
        validate the concatenation."""
        var_map: dict[int, int] = {0: 0, shared_bwd_var: shared_fwd_var}
        var_tables = list(forward.var_tables)
        for step in backward_steps:
            for var in (step.src_var, step.dst_var):
                if var not in var_map:
                    var_map[var] = len(var_tables)
                    var_tables.append(backward.var_tables[var])
        merged_steps = forward.steps + tuple(
            PathStep(s.edge, var_map[s.src_var], var_map[s.dst_var])
            for s in backward_steps
        )
        candidate = Path(
            log_table=forward.log_table,
            start_attr=forward.start_attr,
            end_attr=forward.end_attr,
            var_tables=tuple(var_tables),
            steps=merged_steps,
            anchored_start=True,
            anchored_end=True,
        )
        return candidate if candidate.validate() == [] else None

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Check every restricted-simple-path invariant; returns a list of
        violation messages (empty when the path is valid).

        Incremental extension preserves the invariants by construction;
        this wholesale check guards the bridging combinators and acts as
        the property-test oracle.
        """
        problems: list[str] = []
        if not self.var_tables or self.var_tables[0] != self.log_table:
            problems.append("tuple variable 0 must be the log table")
        if not self.steps:
            problems.append("empty path")
            return problems
        for i in range(len(self.steps) - 1):
            if self.steps[i + 1].src_var != self.steps[i].dst_var:
                problems.append(f"chain broken between steps {i} and {i + 1}")
        for step in self.steps:
            for var, node in ((step.src_var, step.edge.src), (step.dst_var, step.edge.dst)):
                if var >= len(self.var_tables):
                    problems.append(f"step references unknown var {var}")
                elif self.var_tables[var] != node.table:
                    problems.append(
                        f"step table mismatch: var {var} is "
                        f"{self.var_tables[var]}, edge says {node.table}"
                    )
        # entry/exit uniqueness: every var entered <= once, exited <= once
        entries: dict[int, int] = {}
        exits: dict[int, int] = {}
        for step in self.steps:
            exits[step.src_var] = exits.get(step.src_var, 0) + 1
            entries[step.dst_var] = entries.get(step.dst_var, 0) + 1
        for var, n in entries.items():
            if n > 1:
                problems.append(f"var {var} entered {n} times")
        for var, n in exits.items():
            if n > 1:
                problems.append(f"var {var} exited {n} times")
        # anchors
        if self.anchored_start:
            first = self.steps[0]
            if first.src_var != 0 or first.src_attr != self.start_attr:
                problems.append("anchored_start but chain does not begin at L.start")
        if self.anchored_end:
            last = self.steps[-1]
            if last.dst_var != 0 or last.dst_attr != self.end_attr:
                problems.append("anchored_end but chain does not end at L.end")
        # second log variables may only touch self-join edges
        for step in self.steps:
            for var in (step.src_var, step.dst_var):
                if (
                    var != 0
                    and var < len(self.var_tables)
                    and self.var_tables[var] == self.log_table
                    and step.edge.kind is not EdgeKind.SELF_JOIN
                ):
                    problems.append(
                        f"non-self-join edge touches second log var {var}"
                    )
        # table multiplicity: <= 2 vars per table, linked by a self-join step
        by_table: dict[str, list[int]] = {}
        for idx, table in enumerate(self.var_tables):
            by_table.setdefault(table, []).append(idx)
        for table, vars_ in by_table.items():
            if len(vars_) > 2:
                problems.append(f"table {table} hosts {len(vars_)} tuple variables")
            elif len(vars_) == 2:
                pair = set(vars_)
                linked = any(
                    s.edge.kind is EdgeKind.SELF_JOIN
                    and {s.src_var, s.dst_var} == pair
                    for s in self.steps
                )
                if not linked:
                    problems.append(
                        f"table {table} revisited without a self-join edge"
                    )
        return problems

    # ------------------------------------------------------------------
    # query generation
    # ------------------------------------------------------------------
    def alias_of(self, var: int) -> str:
        """Display alias: variable 0 is ``L``; others are ``Table_k``."""
        if var == 0:
            return "L"
        return f"{self.var_tables[var]}_{var}"

    def to_query(
        self,
        log_id_attr: str = "Lid",
        projection: Sequence[AttrRef] | None = None,
        decorations: Iterable[Condition] = (),
    ) -> ConjunctiveQuery:
        """The path's stylized query (Definition 1).

        Default projection is ``L.<log_id_attr>`` — the support-counting
        shape.  ``decorations`` adds the extra selection conditions of a
        decorated template (Definition 3); their AttrRefs must use this
        path's aliases.
        """
        used_vars = sorted({0} | {s.src_var for s in self.steps} | {s.dst_var for s in self.steps})
        tuple_vars = [TupleVar(self.alias_of(v), self.var_tables[v]) for v in used_vars]
        conditions = [
            Condition(
                AttrRef(self.alias_of(s.src_var), s.src_attr),
                "=",
                AttrRef(self.alias_of(s.dst_var), s.dst_attr),
            )
            for s in self.steps
        ]
        conditions.extend(decorations)
        proj = list(projection) if projection else [AttrRef("L", log_id_attr)]
        return ConjunctiveQuery.build(tuple_vars, conditions, proj)

    def signature(self) -> tuple:
        """Alias-permutation-invariant identity of the path's condition
        set: the mining support-cache key and candidate dedup key."""
        return canonical_query_signature(self.to_query())

    def __str__(self) -> str:
        if not self.steps:
            return "<empty path>"
        parts = [f"{self.alias_of(self.steps[0].src_var)}.{self.steps[0].src_attr}"]
        for step in self.steps:
            parts.append(f"{self.alias_of(step.dst_var)}.{step.dst_attr}")
        marker = "explanation" if self.is_explanation else "partial"
        return " -> ".join(parts) + f"  [{marker}, len={self.length}]"
