"""Explanation instances: data-specific results of a template's query.

Paper Section 2.1: "We refer to these data-specific descriptions (query
results) as explanation instances. ... when there are multiple explanation
instances for a given log record, we convert each to natural language and
rank the explanations in ascending order of path length."
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Any

from .template import ExplanationTemplate, _PLACEHOLDER


@dataclass(frozen=True)
class ExplanationInstance:
    """One concrete explanation of one log record.

    ``bindings`` maps ``"alias.attr"`` strings (e.g. ``"A.Date"``) to the
    values of the witnessing database tuples.
    """

    template: ExplanationTemplate
    lid: Any
    bindings: Mapping[str, Any]

    @property
    def path_length(self) -> int:
        """Join-path length of the originating template (the ranking key)."""
        return self.template.length

    def render(self) -> str:
        """Fill the template's description placeholders with this
        instance's values (paper Example 2.2: "Alice had an appointment
        with Dave on 1/1/2010")."""

        def substitute(match: re.Match) -> str:
            key = f"{match.group(1)}.{match.group(2)}"
            if key in self.bindings:
                return str(self.bindings[key])
            return match.group(0)

        return _PLACEHOLDER.sub(substitute, self.template.describe_template())

    def __str__(self) -> str:
        return f"[lid={self.lid}] {self.render()}"


def rank_instances(
    instances: Iterable[ExplanationInstance],
) -> list[ExplanationInstance]:
    """Rank ascending by path length (shorter = more direct explanation),
    breaking ties by template display name, then by the witnessing
    bindings — a *total* deterministic order, so the ranking never
    depends on the executor's row order (point vs batch plans, sharded
    vs single-node tables all agree)."""

    def key(inst: ExplanationInstance):
        return (
            inst.path_length,
            inst.template.display_name(),
            str(inst.lid),
            sorted((k, str(v)) for k, v in inst.bindings.items()),
        )

    return sorted(instances, key=key)
