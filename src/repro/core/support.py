"""Support computation with the paper's three optimizations (Section 3.2.1).

Support of a path/template = the number of distinct log ids returned by

.. code-block:: sql

    SELECT COUNT(DISTINCT Log.Lid) FROM Log, T_1, ..., T_n WHERE C

The evaluator layers the paper's optimizations over the raw executor:

1. **Caching selection conditions and support values** — paths whose
   condition sets are equal (up to alias renaming) share one evaluation.
2. **Reducing result multiplicity** — delegated to the executor's
   distinct-projection pipeline (toggleable for the ablation bench).
3. **Skipping non-selective paths** — when the optimizer expects more than
   ``S × c`` distinct log ids, the support computation is deferred and the
   path is passed to the next mining round unverified.  Explanation
   (fully-anchored) paths are never skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from ..db.database import Database
from ..db.executor import Executor
from ..db.optimizer import CardinalityEstimator
from ..db.query import AttrRef, ConjunctiveQuery, canonical_query_signature
from .path import Path


@dataclass
class SupportStats:
    """Counters the mining benchmarks report."""

    queries_run: int = 0
    cache_hits: int = 0
    skipped: int = 0
    query_time: float = 0.0

    def snapshot(self) -> dict:
        """The counters as a plain dict (for reports and benchmarks)."""
        return {
            "queries_run": self.queries_run,
            "cache_hits": self.cache_hits,
            "skipped": self.skipped,
            "query_time": self.query_time,
        }


@dataclass
class SupportConfig:
    """Optimization toggles (paper Section 3.2.1).

    ``skip_constant`` is the paper's *c*: the optimizer-estimate slack
    factor accounting for estimation error (default 10).
    """

    use_cache: bool = True
    use_skip: bool = True
    skip_constant: float = 10.0
    distinct_reduction: bool = True
    estimator_error_factor: float = 1.0


class SupportEvaluator:
    """Computes (and caches) the support of candidate paths."""

    def __init__(
        self,
        db: Database,
        log_id_attr: str = "Lid",
        config: SupportConfig | None = None,
    ) -> None:
        self.db = db
        self.log_id_attr = log_id_attr
        self.config = config or SupportConfig()
        self.executor = Executor(db, distinct_reduction=self.config.distinct_reduction)
        self.estimator = CardinalityEstimator(
            db, error_factor=self.config.estimator_error_factor
        )
        self.stats = SupportStats()
        self._cache: dict = {}

    # ------------------------------------------------------------------
    def support_of_query(self, query: ConjunctiveQuery, count_attr: AttrRef) -> int:
        """Cached ``COUNT(DISTINCT count_attr)`` of ``query``."""
        key = None
        if self.config.use_cache:
            key = (canonical_query_signature(query), count_attr.attr)
            if key in self._cache:
                self.stats.cache_hits += 1
                return self._cache[key]
        started = time.perf_counter()
        value = self.executor.count_distinct(query, count_attr)
        self.stats.query_time += time.perf_counter() - started
        self.stats.queries_run += 1
        if key is not None:
            self._cache[key] = value
        return value

    def support(self, path: Path) -> int:
        """Exact support of a path (number of log entries it explains)."""
        query = path.to_query(log_id_attr=self.log_id_attr)
        return self.support_of_query(query, AttrRef("L", self.log_id_attr))

    def support_many(self, paths: Sequence[Path]) -> list[int]:
        """Exact support of a whole batch of paths, in input order.

        The entry point the miners' per-round candidate batches go
        through.  The batching win comes from the caches underneath:
        paths sharing a canonical condition-set signature collapse onto
        one evaluation in the support cache, and every distinct query
        reuses the executor's memoized plan — a round's batch re-plans
        nothing and never evaluates the same condition set twice.
        """
        return [self.support(path) for path in paths]

    def support_or_skip(self, path: Path, threshold: float) -> int | None:
        """Support with the skip-non-selective-paths optimization.

        Returns ``None`` when the path's support computation was skipped
        (the optimizer expects it to be comfortably supported); the caller
        must treat a ``None`` as "passes for now" and re-derive pruning
        from the path's descendants.  Explanations are never skipped
        (paper: "In the special case when the path is also an explanation,
        the path is not skipped").
        """
        if (
            self.config.use_skip
            and not path.is_explanation
            and not self._cached(path)
        ):
            query = path.to_query(log_id_attr=self.log_id_attr)
            estimate = self.estimator.estimate_distinct(
                query, AttrRef("L", self.log_id_attr)
            )
            if estimate > threshold * self.config.skip_constant:
                self.stats.skipped += 1
                return None
        return self.support(path)

    def explained_lids(self, query: ConjunctiveQuery, count_attr: AttrRef | None = None) -> set:
        """The distinct set of explained log ids (used by the evaluation
        harness for recall/precision, where the set itself is needed)."""
        attr = count_attr or AttrRef("L", self.log_id_attr)
        started = time.perf_counter()
        values = self.executor.distinct_values(query, attr)
        self.stats.query_time += time.perf_counter() - started
        self.stats.queries_run += 1
        return values

    # ------------------------------------------------------------------
    def _cached(self, path: Path) -> bool:
        if not self.config.use_cache:
            return False
        query = path.to_query(log_id_attr=self.log_id_attr)
        key = (canonical_query_signature(query), self.log_id_attr)
        return key in self._cache

    def reset_stats(self) -> None:
        """Zero the counters (the cache itself is retained)."""
        self.stats = SupportStats()
