"""The paper's primary contribution: explanation templates and mining.

Layout (bottom-up):

* :mod:`.edges`, :mod:`.graph` — the explanation graph over the schema;
* :mod:`.path` — restricted simple paths, extension and bridging;
* :mod:`.template`, :mod:`.instance` — explanation templates (simple,
  decorated, restricted) and their data-specific instances;
* :mod:`.support` — support queries with the Section 3.2.1 optimizations;
* :mod:`.mining` — the one-way, two-way, and bridged miners;
* :mod:`.engine` — the user-facing facade that explains individual
  accesses and surfaces unexplained ones.
"""

from .decoration import (
    DecoratedCandidate,
    DecorationMiner,
    DecorationResult,
    group_depth_attr,
)
from .edges import EdgeKind, SchemaAttr, SchemaEdge
from .engine import ExplanationEngine
from .graph import SchemaGraph
from .instance import ExplanationInstance, rank_instances
from .library import LibraryEntry, ReviewStatus, TemplateLibrary
from .mining import (
    BridgedMiner,
    MinedTemplate,
    MiningConfig,
    MiningResult,
    OneWayMiner,
    RoundStats,
    TwoWayMiner,
)
from .path import Path, PathStep
from .support import SupportConfig, SupportEvaluator, SupportStats
from .template import ExplanationTemplate, dedupe_templates

__all__ = [
    "BridgedMiner",
    "DecoratedCandidate",
    "DecorationMiner",
    "DecorationResult",
    "EdgeKind",
    "group_depth_attr",
    "ExplanationEngine",
    "ExplanationInstance",
    "ExplanationTemplate",
    "LibraryEntry",
    "ReviewStatus",
    "TemplateLibrary",
    "MinedTemplate",
    "MiningConfig",
    "MiningResult",
    "OneWayMiner",
    "Path",
    "PathStep",
    "RoundStats",
    "SchemaAttr",
    "SchemaEdge",
    "SchemaGraph",
    "SupportConfig",
    "SupportEvaluator",
    "SupportStats",
    "TwoWayMiner",
    "dedupe_templates",
    "rank_instances",
]
