"""Explanation templates (paper Definitions 1-4).

An :class:`ExplanationTemplate` wraps a completed :class:`~repro.core.path.Path`
(a connection from ``Log.Patient`` through the database back to
``Log.User``) together with:

* optional *decorations* — extra selection conditions that specialize the
  simple template (Definition 3), e.g. the temporal condition
  ``L.Date > L2.Date`` of the repeat-access template;
* an optional human-readable *description string* with ``[alias.attr]``
  placeholders, used to convert instances to natural language
  (paper Example 2.2); and
* an optional stable name for reports.

Templates are immutable and hashable by their condition-set signature, so
sets of mined templates deduplicate exactly like the paper's support cache.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterable

from ..db.query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Literal,
    canonical_query_signature,
)
from ..db.sql import render_query, render_query_reduced
from .path import Path

#: Matches ``[L.Patient]``-style placeholders in description strings.
_PLACEHOLDER = re.compile(r"\[([A-Za-z0-9_]+)\.([A-Za-z0-9_]+)\]")


@dataclass(frozen=True)
class ExplanationTemplate:
    """A (possibly decorated) explanation template."""

    path: Path
    decorations: tuple[Condition, ...] = ()
    description: str | None = None
    name: str | None = None
    log_id_attr: str = "Lid"

    def __post_init__(self) -> None:
        if not self.path.is_explanation:
            raise ValueError(
                "an explanation template requires a path anchored at both "
                "Log.start and Log.end (Definition 1)"
            )

    # ------------------------------------------------------------------
    # classification (Definitions 2-4)
    # ------------------------------------------------------------------
    @property
    def is_simple(self) -> bool:
        """Simple templates carry no decorations (Definition 2)."""
        return not self.decorations

    @property
    def is_decorated(self) -> bool:
        """True when extra selection conditions specialize the template."""
        return bool(self.decorations)

    @property
    def length(self) -> int:
        """Join-path length; decorations do not lengthen the path."""
        return self.path.length

    def tables_referenced(self) -> set[str]:
        """Distinct tables the template's path touches."""
        return self.path.tables()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def support_query(self) -> ConjunctiveQuery:
        """``SELECT DISTINCT L.Lid`` over the template's conditions."""
        return self.path.to_query(
            log_id_attr=self.log_id_attr, decorations=self.decorations
        )

    def instance_query(self, lid=None) -> ConjunctiveQuery:
        """A wide query whose rows are explanation *instances*.

        The projection covers ``L.Lid`` plus every placeholder mentioned in
        the description (so instances can be rendered to natural language).
        With ``lid`` set, the query is restricted to one log record.
        """
        proj: list[AttrRef] = [AttrRef("L", self.log_id_attr)]
        for ref in self.placeholders():
            if ref not in proj:
                proj.append(ref)
        decorations = list(self.decorations)
        if lid is not None:
            decorations.append(
                Condition(AttrRef("L", self.log_id_attr), "=", Literal(lid))
            )
        return self.path.to_query(
            log_id_attr=self.log_id_attr,
            projection=proj,
            decorations=decorations,
        )

    def to_sql(self, reduced: bool = False) -> str:
        """The template as SQL text (paper Section 2.1 presentation form);
        ``reduced=True`` renders the multiplicity-reduced rewrite."""
        query = self.support_query()
        renderer = render_query_reduced if reduced else render_query
        return renderer(query)

    # ------------------------------------------------------------------
    # description handling
    # ------------------------------------------------------------------
    def placeholders(self) -> list[AttrRef]:
        """AttrRefs referenced by the description string."""
        refs: list[AttrRef] = []
        for alias, attr in _PLACEHOLDER.findall(self.describe_template()):
            ref = AttrRef(alias, attr)
            if ref not in refs:
                refs.append(ref)
        return refs

    def describe_template(self) -> str:
        """The description string, auto-generated when none was given.

        The generic fallback narrates the chain of join conditions; curated
        domain phrasing lives in :mod:`repro.audit.nl`.
        """
        if self.description is not None:
            return self.description
        hops = []
        for step in self.path.steps:
            src = f"[{self.path.alias_of(step.src_var)}.{step.src_attr}]"
            dst = f"[{self.path.alias_of(step.dst_var)}.{step.dst_attr}]"
            hops.append(f"{src} matches {dst} in {self.path.var_tables[step.dst_var]}")
        return (
            "[L.User] accessed [L.Patient]'s record; connection: "
            + "; ".join(hops)
            + "."
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Alias-permutation-invariant identity (conditions incl.
        decorations); templates with equal signatures explain exactly the
        same accesses."""
        return canonical_query_signature(self.support_query())

    def display_name(self) -> str:
        """Stable human-readable identifier for reports."""
        if self.name:
            return self.name
        tables = "+".join(
            sorted(t for t in self.path.tables() if t != self.path.log_table)
        )
        kind = "decorated" if self.is_decorated else "simple"
        return f"len{self.length}:{tables or self.path.log_table}:{kind}"

    def __str__(self) -> str:
        return f"<ExplanationTemplate {self.display_name()}>"


def dedupe_templates(
    templates: Iterable[ExplanationTemplate],
) -> list[ExplanationTemplate]:
    """Drop templates whose condition-set signature repeats (same query =>
    same explanations), keeping first occurrences in order."""
    seen: set = set()
    out: list[ExplanationTemplate] = []
    for template in templates:
        sig = template.signature()
        if sig not in seen:
            seen.add(sig)
            out.append(template)
    return out
