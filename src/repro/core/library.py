"""Template libraries: persistence and the administrator review loop.

Paper Section 3: "While it is important to keep the administrator in the
loop, we argue that the system should reduce the administrator's burden
by automatically suggesting templates from the data.  The administrator
can then review the suggested set of templates before applying them."

A :class:`TemplateLibrary` holds templates with a review status
(``suggested`` / ``approved`` / ``rejected``) and round-trips to a plain
SQL file (one statement per template plus structured comments), so the
review artifact is human-readable and diff-able:

.. code-block:: sql

    -- name: appointments-doctor
    -- status: approved
    -- support: 1021
    -- description: [L.Patient] had an appointment with [L.User]...
    SELECT DISTINCT L.Lid
    FROM Log L, Appointments Appointments_1
    WHERE L.Patient = Appointments_1.Patient
      AND Appointments_1.Doctor = L.User;
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from collections.abc import Iterable, Iterator

from ..db.parser import template_from_sql
from .mining import MiningResult
from .template import ExplanationTemplate

#: Identifies the versioned JSON on-disk form of a template library.
LIBRARY_JSON_FORMAT = "repro.template-library"
#: Bump when the JSON schema changes; :meth:`TemplateLibrary.loads_json`
#: rejects versions it does not understand.
LIBRARY_JSON_VERSION = 1


class ReviewStatus(enum.Enum):
    """Administrator review state of a template (paper Section 3)."""
    SUGGESTED = "suggested"
    APPROVED = "approved"
    REJECTED = "rejected"


@dataclass(frozen=True)
class LibraryEntry:
    """One template plus its review metadata."""

    template: ExplanationTemplate
    status: ReviewStatus = ReviewStatus.SUGGESTED
    support: int | None = None

    @property
    def key(self) -> tuple:
        """Signature identity used for dedup inside the library."""
        return self.template.signature()


class TemplateLibrary:
    """An ordered, signature-deduplicated collection of reviewed templates."""

    def __init__(self, entries: Iterable[LibraryEntry] = ()) -> None:
        self._entries: dict[tuple, LibraryEntry] = {}
        for entry in entries:
            self.add(entry.template, entry.status, entry.support)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add(
        self,
        template: ExplanationTemplate,
        status: ReviewStatus = ReviewStatus.SUGGESTED,
        support: int | None = None,
    ) -> LibraryEntry:
        """Insert or overwrite a template (identity = condition-set signature)."""
        entry = LibraryEntry(template=template, status=status, support=support)
        self._entries[entry.key] = entry
        return entry

    @classmethod
    def from_mining_result(cls, result: MiningResult) -> "TemplateLibrary":
        """Every mined template enters as *suggested* with its support."""
        library = cls()
        for mined in result.templates:
            library.add(mined.template, ReviewStatus.SUGGESTED, mined.support)
        return library

    # ------------------------------------------------------------------
    # review actions
    # ------------------------------------------------------------------
    def _set_status(self, template: ExplanationTemplate, status: ReviewStatus) -> None:
        key = template.signature()
        if key not in self._entries:
            raise KeyError(f"template not in library: {template.display_name()}")
        self._entries[key] = replace(self._entries[key], status=status)

    def approve(self, template: ExplanationTemplate) -> None:
        """Mark a template approved for production use."""
        self._set_status(template, ReviewStatus.APPROVED)

    def reject(self, template: ExplanationTemplate) -> None:
        """Mark a template rejected (kept for the audit trail)."""
        self._set_status(template, ReviewStatus.REJECTED)

    def approve_all_suggested(self) -> int:
        """Bulk-approve; returns the number newly approved."""
        n = 0
        for key, entry in list(self._entries.items()):
            if entry.status is ReviewStatus.SUGGESTED:
                self._entries[key] = replace(entry, status=ReviewStatus.APPROVED)
                n += 1
        return n

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LibraryEntry]:
        return iter(self._entries.values())

    def entries(self, status: ReviewStatus | None = None) -> list[LibraryEntry]:
        """All entries, optionally filtered to one review status."""
        out = list(self._entries.values())
        if status is not None:
            out = [e for e in out if e.status is status]
        return out

    def approved_templates(self) -> list[ExplanationTemplate]:
        """What the explanation engine should actually apply."""
        return [e.template for e in self.entries(ReviewStatus.APPROVED)]

    def production_templates(self) -> tuple[list[ExplanationTemplate], bool]:
        """The set a deployment should apply, as ``(templates, fallback)``.

        Approved templates when any exist; otherwise every *suggested*
        one with ``fallback=True`` so callers can surface that unreviewed
        templates are in use (the CLI prints a note).  The one policy
        shared by ``AuditService.open`` and ``repro-audit --templates``.
        """
        approved = self.approved_templates()
        if approved:
            return approved, False
        return [e.template for e in self.entries(ReviewStatus.SUGGESTED)], True

    def counts(self) -> dict[str, int]:
        """Entry counts per review status."""
        out = {status.value: 0 for status in ReviewStatus}
        for entry in self._entries.values():
            out[entry.status.value] += 1
        return out

    # ------------------------------------------------------------------
    # persistence (SQL file with structured comments)
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialize the library to its SQL-file text form."""
        blocks = []
        for entry in self._entries.values():
            template = entry.template
            lines = []
            if template.name:
                lines.append(f"-- name: {template.name}")
            lines.append(f"-- status: {entry.status.value}")
            if entry.support is not None:
                lines.append(f"-- support: {entry.support}")
            if template.description is not None:
                description = template.description.replace("\n", " ")
                lines.append(f"-- description: {description}")
            lines.append(template.to_sql() + ";")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks) + ("\n" if blocks else "")

    def save(self, path: str) -> None:
        """Write the SQL-file form to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.dumps())

    # ------------------------------------------------------------------
    # persistence (versioned JSON — the repro.api serving format)
    # ------------------------------------------------------------------
    def dumps_json(self) -> str:
        """Serialize the library to its versioned JSON form.

        Unlike :meth:`dumps` (the human-reviewable SQL artifact), the JSON
        form is lossless: descriptions keep their exact text (including
        newlines), and each entry carries the path-anchoring metadata
        (``log_table``/``start_attr``/``end_attr``/``log_id_attr``) needed
        to reconstruct the template without caller-supplied defaults — so
        mined templates survive process restarts byte-identically.
        """
        entries = []
        for entry in self._entries.values():
            template = entry.template
            entries.append(
                {
                    "name": template.name,
                    "status": entry.status.value,
                    "support": entry.support,
                    "description": template.description,
                    "sql": template.to_sql(),
                    "log_table": template.path.log_table,
                    "start_attr": template.path.start_attr,
                    "end_attr": template.path.end_attr,
                    "log_id_attr": template.log_id_attr,
                }
            )
        return json.dumps(
            {
                "format": LIBRARY_JSON_FORMAT,
                "version": LIBRARY_JSON_VERSION,
                "entries": entries,
            },
            indent=2,
        )

    def dump(self, path: str) -> None:
        """Write the versioned JSON form to ``path``.

        :meth:`load` reads it back (the format is sniffed, so one loader
        serves both the SQL and JSON artifacts).
        """
        with open(path, "w") as fh:
            fh.write(self.dumps_json() + "\n")

    @classmethod
    def loads_json(cls, text: str) -> "TemplateLibrary":
        """Parse a library from its versioned JSON form."""
        payload = json.loads(text)
        if payload.get("format") != LIBRARY_JSON_FORMAT:
            raise ValueError(
                f"not a template library (format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version != LIBRARY_JSON_VERSION:
            raise ValueError(
                f"unsupported template-library version {version!r} "
                f"(this build reads version {LIBRARY_JSON_VERSION})"
            )
        library = cls()
        for raw in payload["entries"]:
            template = template_from_sql(
                raw["sql"],
                log_table=raw["log_table"],
                start_attr=raw["start_attr"],
                end_attr=raw["end_attr"],
                description=raw["description"],
                name=raw["name"],
                log_id_attr=raw["log_id_attr"],
            )
            library.add(template, ReviewStatus(raw["status"]), raw["support"])
        return library

    @classmethod
    def loads(
        cls,
        text: str,
        log_table: str = "Log",
        start_attr: str = "Patient",
        end_attr: str = "User",
        log_id_attr: str = "Lid",
    ) -> "TemplateLibrary":
        """Parse a library from its SQL-file text form."""
        library = cls()
        for raw_block in text.split(";"):
            block = raw_block.strip()
            if not block:
                continue
            name = description = None
            status = ReviewStatus.SUGGESTED
            support = None
            sql_lines = []
            for line in block.splitlines():
                stripped = line.strip()
                if stripped.startswith("-- name:"):
                    name = stripped[len("-- name:"):].strip()
                elif stripped.startswith("-- status:"):
                    status = ReviewStatus(stripped[len("-- status:"):].strip())
                elif stripped.startswith("-- support:"):
                    support = int(stripped[len("-- support:"):].strip())
                elif stripped.startswith("-- description:"):
                    description = stripped[len("-- description:"):].strip()
                elif stripped.startswith("--"):
                    continue
                else:
                    sql_lines.append(line)
            sql = "\n".join(sql_lines).strip()
            if not sql:
                continue
            template = template_from_sql(
                sql,
                log_table=log_table,
                start_attr=start_attr,
                end_attr=end_attr,
                description=description,
                name=name,
                log_id_attr=log_id_attr,
            )
            library.add(template, status, support)
        return library

    @classmethod
    def load(cls, path: str, **kwargs) -> "TemplateLibrary":
        """Read a library written by :meth:`save` (SQL) or :meth:`dump`
        (versioned JSON); the format is sniffed from the content."""
        with open(path) as fh:
            text = fh.read()
        if text.lstrip().startswith("{"):
            if kwargs:
                raise TypeError(
                    "JSON libraries are self-describing; loader keyword "
                    f"arguments are not accepted: {sorted(kwargs)}"
                )
            return cls.loads_json(text)
        return cls.loads(text, **kwargs)
