"""Decorated-template mining (the paper's stated future work).

Section 5.3.4: length-4 group templates raise recall but drag precision
down because they match collaborative groups at *every* hierarchy depth;
the paper closes with "In the future, we will consider how to mine
decorated explanation templates that restrict the groups that can be
used to better control precision."  This module implements that step.

Given a mined *simple* template, a decoration candidate is an extra
selection condition ``attr = value`` over a categorical attribute of one
of the template's tuple variables (e.g. ``Groups_2.Group_Depth = 2``).
The miner scores every candidate value against a labeled log (real
accesses vs. the fake log of Section 5.3.2) and returns the decorated
variants on the precision/recall frontier, plus a single recommended
refinement: the decoration with the best precision among those that keep
at least ``min_recall_ratio`` of the simple template's real recall.

The same machinery handles any low-cardinality attribute — hierarchy
depths, department codes, event types — making it a general
precision-control knob for administrators reviewing mined templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..db.database import Database
from ..db.executor import Executor
from ..db.query import AttrRef, Condition, Literal
from .template import ExplanationTemplate


@dataclass(frozen=True)
class DecoratedCandidate:
    """One scored decoration of a base template."""

    template: ExplanationTemplate
    value: object
    explained_real: int
    explained_fake: int

    @property
    def precision(self) -> float:
        """Real fraction of everything this decorated template explains."""
        explained = self.explained_real + self.explained_fake
        if explained == 0:
            return 1.0
        return self.explained_real / explained

    def recall_vs(self, base_real: int) -> float:
        """Fraction of the base template's real coverage retained."""
        if base_real == 0:
            return 0.0
        return self.explained_real / base_real


@dataclass(frozen=True)
class DecorationResult:
    """Everything a decoration-mining pass produced for one template."""

    base: ExplanationTemplate
    base_real: int
    base_fake: int
    candidates: tuple[DecoratedCandidate, ...]
    recommended: DecoratedCandidate | None

    @property
    def base_precision(self) -> float:
        """Precision of the undecorated base template."""
        explained = self.base_real + self.base_fake
        if explained == 0:
            return 1.0
        return self.base_real / explained


class DecorationMiner:
    """Scores ``attr = value`` decorations against a real/fake log split.

    ``db`` must contain the combined real+fake log (the Section 5.3.2
    construction); ``real_lids``/``fake_lids`` label it.  Evaluation can
    be restricted to a test subset (e.g. day-7 first accesses) via
    ``test_lids``.
    """

    #: Attributes with more distinct values than this are refused — a
    #: decoration per value would overfit and explode the search.
    MAX_VALUES = 64

    def __init__(
        self,
        db: Database,
        real_lids: set,
        fake_lids: set,
        test_lids: set | None = None,
        log_id_attr: str = "Lid",
    ) -> None:
        self.db = db
        self.executor = Executor(db)
        self.real_lids = set(real_lids) if test_lids is None else (
            set(real_lids) & set(test_lids)
        )
        self.fake_lids = set(fake_lids)
        self.log_id_attr = log_id_attr

    # ------------------------------------------------------------------
    def _explained(self, template: ExplanationTemplate) -> set:
        return self.executor.distinct_values(
            template.support_query(), AttrRef("L", self.log_id_attr)
        )

    def candidate_values(self, template: ExplanationTemplate, attr: AttrRef) -> list:
        """Distinct values of ``attr``'s underlying column (sorted)."""
        table_name = None
        for var in template.support_query().tuple_vars:
            if var.alias == attr.alias:
                table_name = var.table
                break
        if table_name is None:
            raise ValueError(f"alias {attr.alias!r} not in template")
        values = sorted(
            self.db.table(table_name).distinct_values(attr.attr), key=repr
        )
        if len(values) > self.MAX_VALUES:
            raise ValueError(
                f"{table_name}.{attr.attr} has {len(values)} distinct values "
                f"(max {self.MAX_VALUES}); decorations would overfit"
            )
        return values

    def mine(
        self,
        template: ExplanationTemplate,
        attr: AttrRef,
        min_recall_ratio: float = 0.85,
    ) -> DecorationResult:
        """Score every ``attr = value`` decoration of ``template``.

        The recommended refinement maximizes precision among candidates
        retaining at least ``min_recall_ratio`` of the base template's
        real coverage (ties: higher real coverage, then smaller value
        repr, for determinism).
        """
        if not 0 < min_recall_ratio <= 1:
            raise ValueError("min_recall_ratio must be in (0, 1]")
        base_explained = self._explained(template)
        base_real = len(base_explained & self.real_lids)
        base_fake = len(base_explained & self.fake_lids)

        candidates: list[DecoratedCandidate] = []
        for value in self.candidate_values(template, attr):
            decorated = ExplanationTemplate(
                path=template.path,
                decorations=template.decorations
                + (Condition(attr, "=", Literal(value)),),
                description=template.description,
                name=(
                    f"{template.name}+{attr.attr}={value}"
                    if template.name
                    else None
                ),
                log_id_attr=template.log_id_attr,
            )
            explained = self._explained(decorated)
            candidates.append(
                DecoratedCandidate(
                    template=decorated,
                    value=value,
                    explained_real=len(explained & self.real_lids),
                    explained_fake=len(explained & self.fake_lids),
                )
            )

        viable = [
            c
            for c in candidates
            if c.recall_vs(base_real) >= min_recall_ratio
        ]
        recommended = None
        if viable:
            recommended = max(
                viable,
                key=lambda c: (c.precision, c.explained_real, repr(c.value)),
            )
        return DecorationResult(
            base=template,
            base_real=base_real,
            base_fake=base_fake,
            candidates=tuple(candidates),
            recommended=recommended,
        )

    def refine_all(
        self,
        templates: Iterable[ExplanationTemplate],
        attr_for: "callable",
        min_recall_ratio: float = 0.85,
    ) -> list[DecorationResult]:
        """Run :meth:`mine` over many templates.

        ``attr_for(template)`` returns the decoration attribute for a
        template, or ``None`` to leave it undecorated.
        """
        out = []
        for template in templates:
            attr = attr_for(template)
            if attr is None:
                continue
            out.append(self.mine(template, attr, min_recall_ratio))
        return out


def group_depth_attr(template: ExplanationTemplate) -> AttrRef | None:
    """The canonical ``attr_for`` for CareWeb-style group templates: the
    ``Group_Depth`` column of the template's first Groups tuple variable
    (None when the template does not touch a Groups table)."""
    for var in template.support_query().tuple_vars:
        if var.table == "Groups":
            return AttrRef(var.alias, "Group_Depth")
    return None
