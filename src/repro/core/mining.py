"""Mining frequent explanation templates (paper Section 3).

Three algorithms, all sharing the same candidate space and support
semantics, so they provably return the same template set (the paper
observes exactly this: "Each algorithm produced the same set of
explanation templates"):

* :class:`OneWayMiner` — Algorithm 1: grow start-anchored paths left to
  right, pruning by support monotonicity.
* :class:`TwoWayMiner` — grow start-anchored paths forward *and*
  end-anchored paths backward simultaneously; explanations are found from
  both directions (and deduplicated).
* :class:`BridgedMiner` — Section 3.3.1: run the two-way algorithm only up
  to length ``l``, then *bridge* the two frontiers: lengths
  ``l+1 .. 2l-1`` share a bridge edge; lengths ``>= 2l`` are joined
  through explicit middle-edge combinations.  Bridging pushes the
  start/end constraints down, so no partial-path support query is ever
  issued beyond length ``l``.

Every miner applies the Section 3.2.1 optimizations through
:class:`~repro.core.support.SupportEvaluator`: support caching by
canonical condition set, multiplicity reduction, and optimizer-estimate
skipping (never applied to explanation candidates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..db.database import Database
from .graph import SchemaGraph
from .path import Path
from .support import SupportConfig, SupportEvaluator
from .template import ExplanationTemplate


@dataclass(frozen=True)
class MiningConfig:
    """Knobs of Definition 5 plus the optimization toggles.

    ``support_fraction`` is the paper's *s* (default 1%); ``max_length``
    is *M*; ``max_tables`` is *T* (self-joined tables count once;
    the graph's ``uncounted_tables`` are free).
    """

    support_fraction: float = 0.01
    max_length: int = 5
    max_tables: int = 3
    support: SupportConfig = field(default_factory=SupportConfig)

    def __post_init__(self) -> None:
        if not 0 < self.support_fraction <= 1:
            raise ValueError("support_fraction must be in (0, 1]")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_tables < 1:
            raise ValueError("max_tables must be >= 1")


@dataclass(frozen=True)
class MinedTemplate:
    """A supported explanation template with its measured support."""

    template: ExplanationTemplate
    support: int

    @property
    def length(self) -> int:
        """Join-path length of the mined template."""
        return self.template.length


@dataclass
class RoundStats:
    """Per-length progress counters (feeds the Figure 13 benchmark)."""

    length: int
    candidates: int = 0
    supported_paths: int = 0
    explanations: int = 0
    seconds: float = 0.0


@dataclass
class MiningResult:
    """Everything a mining run produced."""

    algorithm: str
    templates: list[MinedTemplate]
    rounds: list[RoundStats]
    support_stats: dict
    threshold: float

    def templates_by_length(self) -> dict[int, list[MinedTemplate]]:
        """Mined templates grouped by join-path length."""
        out: dict[int, list[MinedTemplate]] = {}
        for mined in self.templates:
            out.setdefault(mined.length, []).append(mined)
        return out

    def cumulative_time_by_length(self) -> dict[int, float]:
        """Cumulative run time after finishing each path length — the
        series plotted in the paper's Figure 13."""
        out: dict[int, float] = {}
        total = 0.0
        for stats in sorted(self.rounds, key=lambda r: r.length):
            total += stats.seconds
            out[stats.length] = total
        return out

    def signatures(self) -> set:
        """Condition-set signatures of every mined template."""
        return {m.template.signature() for m in self.templates}


class _MinerBase:
    """Shared plumbing: threshold, dedup, candidate acceptance."""

    algorithm = "base"

    def __init__(
        self,
        db: Database,
        graph: SchemaGraph,
        config: MiningConfig | None = None,
        log_id_attr: str = "Lid",
        _share_state_with: "_MinerBase | None" = None,
    ) -> None:
        self.db = db
        self.graph = graph
        self.config = config or MiningConfig()
        self.log_id_attr = log_id_attr
        if _share_state_with is not None:
            # Used by BridgedMiner to run the two-way phase as a subroutine
            # over its own evaluator, dedup set, template list, and rounds.
            self.evaluator = _share_state_with.evaluator
            self.threshold = _share_state_with.threshold
            self._seen = _share_state_with._seen
            self._templates = _share_state_with._templates
            self._rounds = _share_state_with._rounds
        else:
            self.evaluator = SupportEvaluator(db, log_id_attr, self.config.support)
            log_size = len(db.table(graph.log_table))
            self.threshold = self.config.support_fraction * log_size
            self._seen = set()
            self._templates = []
            self._rounds = {}

    # ------------------------------------------------------------------
    def _round(self, length: int) -> RoundStats:
        if length not in self._rounds:
            self._rounds[length] = RoundStats(length=length)
        return self._rounds[length]

    def _admissible(self, path: Path | None) -> bool:
        """Structural admission: valid extension within the T budget."""
        return (
            path is not None
            and path.counted_tables(self.graph) <= self.config.max_tables
        )

    def _fresh(self, path: Path) -> bool:
        """Candidate-level dedup by canonical condition-set signature."""
        sig = path.signature()
        if sig in self._seen:
            return False
        self._seen.add(sig)
        return True

    def _consider_many(self, paths: list[Path], stats: RoundStats) -> list[Path]:
        """Support-test one round's candidates set-at-a-time.

        Explanation candidates (never skipped) are support-counted through
        one batched :meth:`SupportEvaluator.support_many` call — duplicates
        by condition-set signature collapse in the support cache and every
        query reuses the executor's memoized plan; partial paths keep the
        per-path skip-non-selective logic (their optimizer estimates
        differ path by path).  Returns the paths joining the next frontier
        in input order; mined explanations are recorded internally.
        Results are identical to considering each path on its own.
        """
        explanations = [p for p in paths if p.is_explanation]
        supports = self.evaluator.support_many(explanations)
        for path, support in zip(explanations, supports):
            stats.candidates += 1
            if support >= self.threshold:
                stats.explanations += 1
                template = ExplanationTemplate(path=path, log_id_attr=self.log_id_attr)
                self._templates.append(MinedTemplate(template, support))
        kept: list[Path] = []
        for path in paths:
            if path.is_explanation:
                continue  # closed paths are never extended
            stats.candidates += 1
            support = self.evaluator.support_or_skip(path, self.threshold)
            if support is None or support >= self.threshold:
                stats.supported_paths += 1
                kept.append(path)
        return kept

    def _result(self) -> MiningResult:
        templates = sorted(
            self._templates,
            key=lambda m: (m.length, m.template.display_name()),
        )
        return MiningResult(
            algorithm=self.algorithm,
            templates=templates,
            rounds=[self._rounds[k] for k in sorted(self._rounds)],
            support_stats=self.evaluator.stats.snapshot(),
            threshold=self.threshold,
        )


class OneWayMiner(_MinerBase):
    """Algorithm 1: bottom-up, left-to-right template mining."""

    algorithm = "one-way"

    def mine(self) -> MiningResult:
        """Run the algorithm; returns the full MiningResult.

        Each round gathers its admissible, fresh candidates first and
        support-tests them as one :meth:`_consider_many` batch.
        """
        stats = self._round(1)
        started = time.perf_counter()
        seeds = [
            seed
            for edge in self.graph.start_edges()
            for seed in [Path.forward_seed(self.graph, edge)]
            if self._admissible(seed) and self._fresh(seed)
        ]
        frontier = self._consider_many(seeds, stats)
        stats.seconds += time.perf_counter() - started

        for length in range(2, self.config.max_length + 1):
            stats = self._round(length)
            started = time.perf_counter()
            candidates = [
                candidate
                for path in frontier
                for edge in self.graph.edges_from_table(path.last_table())
                for candidate in [path.extend_forward(edge)]
                if self._admissible(candidate) and self._fresh(candidate)
            ]
            frontier = self._consider_many(candidates, stats)
            stats.seconds += time.perf_counter() - started
        return self._result()


class TwoWayMiner(_MinerBase):
    """Grow paths from both endpoints simultaneously (Section 3.3).

    Exposes the per-length frontiers so :class:`BridgedMiner` can reuse the
    phase as a subroutine.
    """

    algorithm = "two-way"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.forward_by_length: dict[int, list[Path]] = {}
        self.backward_by_length: dict[int, list[Path]] = {}

    def run_to_length(self, max_length: int) -> None:
        """Populate frontiers (and explanations) up to ``max_length``.

        Each direction's per-round candidates are support-tested as one
        :meth:`_consider_many` batch.
        """
        stats = self._round(1)
        started = time.perf_counter()
        fwd_seeds = [
            seed
            for edge in self.graph.start_edges()
            for seed in [Path.forward_seed(self.graph, edge)]
            if self._admissible(seed) and self._fresh(seed)
        ]
        fwd = self._consider_many(fwd_seeds, stats)
        bwd_seeds = [
            seed
            for edge in self.graph.end_edges()
            for seed in [Path.backward_seed(self.graph, edge)]
            if self._admissible(seed) and self._fresh(seed)
        ]
        bwd = self._consider_many(bwd_seeds, stats)
        self.forward_by_length[1] = fwd
        self.backward_by_length[1] = bwd
        stats.seconds += time.perf_counter() - started

        for length in range(2, max_length + 1):
            stats = self._round(length)
            started = time.perf_counter()
            fwd_candidates = [
                candidate
                for path in self.forward_by_length[length - 1]
                for edge in self.graph.edges_from_table(path.last_table())
                for candidate in [path.extend_forward(edge)]
                if self._admissible(candidate) and self._fresh(candidate)
            ]
            new_fwd = self._consider_many(fwd_candidates, stats)
            bwd_candidates = [
                candidate
                for path in self.backward_by_length[length - 1]
                for edge in self.graph.edges_into_table(path.first_table())
                for candidate in [path.extend_backward(edge)]
                if self._admissible(candidate) and self._fresh(candidate)
            ]
            new_bwd = self._consider_many(bwd_candidates, stats)
            self.forward_by_length[length] = new_fwd
            self.backward_by_length[length] = new_bwd
            stats.seconds += time.perf_counter() - started

    def mine(self) -> MiningResult:
        """Run the algorithm; returns the full MiningResult."""
        self.run_to_length(self.config.max_length)
        return self._result()


class BridgedMiner(_MinerBase):
    """Bridge-``l``: two-way to length ``l``, then bridge the frontiers
    (paper Section 3.3.1 and the Bridge-2/3/4 series of Figure 13)."""

    def __init__(
        self,
        db: Database,
        graph: SchemaGraph,
        config: MiningConfig | None = None,
        log_id_attr: str = "Lid",
        bridge_length: int = 2,
    ) -> None:
        if bridge_length < 1:
            raise ValueError("bridge_length must be >= 1")
        super().__init__(db, graph, config, log_id_attr)
        self.bridge_length = bridge_length
        self.algorithm = f"bridge-{bridge_length}"

    def mine(self) -> MiningResult:
        """Run the algorithm; returns the full MiningResult."""
        ell = min(self.bridge_length, self.config.max_length)
        # Phase 1: two-way exploration up to the bridge length, sharing
        # this miner's dedup set, evaluator, templates, and round stats.
        twoway = TwoWayMiner(
            self.db,
            self.graph,
            replace(self.config, max_length=ell),
            self.log_id_attr,
            _share_state_with=self,
        )
        twoway.run_to_length(ell)
        fwd_by_len = twoway.forward_by_length
        bwd_by_len = twoway.backward_by_length

        # Phase 2: lengths l+1 .. 2l-1 — connect a forward path of length l
        # to a backward path of length n-l+1 over a shared bridge edge.
        bwd_by_first_edge: dict = {}
        for blen, paths in bwd_by_len.items():
            for path in paths:
                bwd_by_first_edge.setdefault(
                    (blen, path.steps[0].edge), []
                ).append(path)
        for n in range(ell + 1, min(self.config.max_length, 2 * ell - 1) + 1):
            stats = self._round(n)
            started = time.perf_counter()
            blen = n - ell + 1
            candidates = []
            for fwd in fwd_by_len.get(ell, ()):
                key = (blen, fwd.steps[-1].edge)
                for bwd in bwd_by_first_edge.get(key, ()):
                    candidate = Path.bridge(fwd, bwd)
                    if self._admissible(candidate) and self._fresh(candidate):
                        candidates.append(candidate)
            self._consider_many(candidates, stats)
            stats.seconds += time.perf_counter() - started

        # Phase 3: lengths >= 2l — all combinations of middle edges between
        # a length-l forward path and a length-l backward path.
        bwd_by_first_table: dict[str, list[Path]] = {}
        for path in bwd_by_len.get(ell, ()):
            bwd_by_first_table.setdefault(path.first_table(), []).append(path)
        for n in range(max(ell + 1, 2 * ell), self.config.max_length + 1):
            stats = self._round(n)
            started = time.perf_counter()
            middles = n - 2 * ell
            candidates: list[Path] = []
            for fwd in fwd_by_len.get(ell, ()):
                self._bridge_through_middles(
                    fwd, middles, bwd_by_first_table, candidates
                )
            self._consider_many(candidates, stats)
            stats.seconds += time.perf_counter() - started
        return self._result()

    def _bridge_through_middles(
        self,
        extended: Path,
        remaining: int,
        bwd_by_first_table: dict[str, list[Path]],
        candidates: list[Path],
    ) -> None:
        """DFS over middle-edge combinations, closing with backward paths.

        Admissible, fresh closures are gathered into ``candidates`` for
        one batched consideration per round."""
        if remaining == 0:
            for bwd in bwd_by_first_table.get(extended.last_table(), ()):
                candidate = Path.bridge_with_middle(extended, (), bwd)
                if self._admissible(candidate) and self._fresh(candidate):
                    candidates.append(candidate)
            return
        for edge in self.graph.edges_from_table(extended.last_table()):
            longer = extended.extend_forward(edge)
            if not self._admissible(longer):
                continue
            self._bridge_through_middles(
                longer, remaining - 1, bwd_by_first_table, candidates
            )
