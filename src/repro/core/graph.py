"""The explanation schema graph.

:class:`SchemaGraph` assembles the directed edge set the mining
algorithms traverse (paper Section 3.1):

* both directions of every declared key/foreign-key relationship,
* both directions of every administrator-specified relationship, and
* one self-join edge per administrator-approved ``(table, attribute)``.

It also fixes the two distinguished endpoints of every explanation —
the *start* attribute (the data that was accessed, ``Log.Patient``) and
the *end* attribute (the user who accessed it, ``Log.User``) — plus the
audit-log table name itself.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..db.backend import AnyDatabase
from ..db.errors import SchemaError, UnknownColumnError
from .edges import EdgeKind, SchemaAttr, SchemaEdge


class SchemaGraph:
    """Directed join-edge graph over a database schema.

    Parameters
    ----------
    db:
        The database whose catalog supplies FK-derived edges.
    log_table, start_attr, end_attr:
        The audit log and the two path endpoints.  Defaults follow the
        paper's CareWeb log: ``Log.Patient`` (data accessed) to
        ``Log.User`` (accessor).
    uncounted_tables:
        Tables excluded from the *T* table-reference budget of restricted
        templates, mirroring the paper's treatment of its user-id mapping
        table ("we did not count this added mapping table").
    """

    def __init__(
        self,
        db: AnyDatabase,
        log_table: str = "Log",
        start_attr: str = "Patient",
        end_attr: str = "User",
        uncounted_tables: Iterable[str] = (),
    ) -> None:
        if not db.has_table(log_table):
            raise SchemaError(f"log table {log_table!r} not in database")
        log_schema = db.table(log_table).schema
        for attr in (start_attr, end_attr):
            if not log_schema.has_column(attr):
                raise UnknownColumnError(log_table, attr)
        self.db = db
        self.log_table = log_table
        self.start = SchemaAttr(log_table, start_attr)
        self.end = SchemaAttr(log_table, end_attr)
        self.uncounted_tables = frozenset(uncounted_tables)
        self._edges: list[SchemaEdge] = []
        self._edge_set: set[SchemaEdge] = set()
        self._by_src_table: dict[str, list[SchemaEdge]] = {}
        self._by_dst_table: dict[str, list[SchemaEdge]] = {}
        self._self_join_attrs: set[SchemaAttr] = set()
        self._load_fk_edges()

    # ------------------------------------------------------------------
    # edge registration
    # ------------------------------------------------------------------
    def _register(self, edge: SchemaEdge) -> None:
        if edge in self._edge_set:
            return
        self._validate_attr(edge.src)
        self._validate_attr(edge.dst)
        self._edge_set.add(edge)
        self._edges.append(edge)
        self._by_src_table.setdefault(edge.src.table, []).append(edge)
        self._by_dst_table.setdefault(edge.dst.table, []).append(edge)

    def _validate_attr(self, node: SchemaAttr) -> None:
        schema = self.db.table(node.table).schema  # raises UnknownTableError
        if not schema.has_column(node.attr):
            raise UnknownColumnError(node.table, node.attr)

    def _load_fk_edges(self) -> None:
        for owner, fk in self.db.foreign_keys():
            a = SchemaAttr(owner, fk.column)
            b = SchemaAttr(fk.ref_table, fk.ref_column)
            if a == b:
                continue  # degenerate self-FK; use allow_self_join instead
            kind = EdgeKind.FOREIGN_KEY
            self._register(SchemaEdge(a, b, kind))
            self._register(SchemaEdge(b, a, kind))

    def add_relationship(self, a: SchemaAttr, b: SchemaAttr) -> None:
        """Register an administrator-specified equi-join relationship
        (both directions).  Paper Section 3.1, assumption 2."""
        if a.table == b.table:
            raise SchemaError(
                "relationships within one table are implicit (same tuple "
                "variable) or self-joins; use allow_self_join() instead"
            )
        self._register(SchemaEdge(a, b, EdgeKind.ADMIN))
        self._register(SchemaEdge(b, a, EdgeKind.ADMIN))

    def allow_self_join(self, table: str, attr: str) -> None:
        """Permit self-joins on ``table.attr`` (paper Section 3.1,
        assumption 3) — e.g. ``Groups.Group_id`` or a department code."""
        node = SchemaAttr(table, attr)
        self._validate_attr(node)
        self._self_join_attrs.add(node)
        self._register(SchemaEdge(node, node, EdgeKind.SELF_JOIN))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[SchemaEdge, ...]:
        """Every directed edge (FK both ways, admin both ways, self-joins)."""
        return tuple(self._edges)

    def edges_from_table(self, table: str) -> tuple[SchemaEdge, ...]:
        """Edges whose source attribute lives in ``table`` — the candidate
        continuations of a path whose last tuple variable is ``table``."""
        return tuple(self._by_src_table.get(table, ()))

    def edges_into_table(self, table: str) -> tuple[SchemaEdge, ...]:
        """Edges whose destination attribute lives in ``table`` (used by
        backward extension in the two-way algorithm)."""
        return tuple(self._by_dst_table.get(table, ()))

    def start_edges(self) -> tuple[SchemaEdge, ...]:
        """Edges that begin at the start attribute (Algorithm 1, line 2)."""
        return tuple(e for e in self._edges if e.src == self.start)

    def end_edges(self) -> tuple[SchemaEdge, ...]:
        """Edges that terminate at the end attribute (two-way seeding)."""
        return tuple(e for e in self._edges if e.dst == self.end)

    def self_join_allowed(self, table: str, attr: str) -> bool:
        """Whether the administrator permitted self-joins on ``table.attr``."""
        return SchemaAttr(table, attr) in self._self_join_attrs

    def counted_tables(self, tables: Iterable[str]) -> int:
        """Number of distinct tables that count against the *T* budget."""
        return len(set(tables) - self.uncounted_tables)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SchemaGraph {self.start} => {self.end}, "
            f"{len(self._edges)} directed edges>"
        )
