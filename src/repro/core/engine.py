"""The explanation engine: apply templates to a log and explain accesses.

This is the user-facing facade of the paper's system.  Given a database
(including its access log) and a set of explanation templates — either
hand-crafted (Section 5.3.1) or mined (Section 3) — the engine answers:

* *Why did access L100 happen?* — :meth:`ExplanationEngine.explain`
  returns ranked natural-language instances (paper Example 1.1).
* *Which accesses does template t explain?* —
  :meth:`ExplanationEngine.explained_lids`.
* *Which accesses can nobody explain?* —
  :meth:`ExplanationEngine.unexplained_lids`, the paper's misuse-detection
  application (Section 1: "reduce the set of accesses that must be
  examined to those that are unexplained").

Three evaluation paths
----------------------
* **point** — :meth:`ExplanationEngine.explain` pins one log id into each
  template's query; the executor answers via index probes.  Right for
  rendering the explanation *instances* of a single access.
* **delta-streaming** — :meth:`ExplanationEngine.notify_appended` patches
  the cached explained/unexplained sets with one point query per
  (template, log-ranging tuple variable) after an append.  Right for
  small, latency-sensitive streams.
* **batch-semijoin** — :meth:`ExplanationEngine.explain_batch` evaluates
  each template ONCE as a semijoin against a whole set of pending
  accesses (``L.Lid IN batch``) and partitions explained/unexplained in
  one pass; :meth:`ExplanationEngine.explain_all` is the whole-log case
  and backs the cold path of :meth:`all_explained_lids`.  Right for bulk
  audits, mining support, and large streamed batches — O(templates)
  queries total, independent of batch size.

Incremental maintenance contract
--------------------------------
The engine caches, per template, the set of log ids the template explains,
plus aggregate views (union of explained ids, the unexplained queue, the
log-id universe).  Two maintenance paths exist after the log grows:

* :meth:`ExplanationEngine.notify_appended` **delta-evaluates** each
  template against just the appended log row: for every tuple variable
  ranging over the log table the support query is re-run with that
  variable pinned to the new row (a point query the executor answers via
  index probes), and the resulting newly-explained ids are unioned into
  the caches.  Conjunctive queries are monotone under inserts, so the
  patched caches equal a from-scratch evaluation — the invariant pinned by
  ``tests/test_property_incremental.py``.
* :meth:`ExplanationEngine.invalidate_cache` drops everything, forcing a
  full rebuild on next read.  It remains the correct call after
  *destructive* changes (row deletion, table replacement), which delta
  maintenance deliberately does not model.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any

from ..db.backend import AnyDatabase, ExecutorProtocol, make_executor
from ..db.query import AttrRef, Condition, ConjunctiveQuery, Literal
from .instance import ExplanationInstance, rank_instances
from .template import ExplanationTemplate, dedupe_templates

#: Batches at least this large take the semijoin path when
#: :meth:`ExplanationEngine.notify_appended_many` auto-selects a strategy.
SEMIJOIN_BATCH_MIN = 8


@dataclass(frozen=True)
class BatchExplanation:
    """The one-pass partition of a batch of accesses.

    ``explained | unexplained`` is exactly the input batch; the two sets
    are disjoint.
    """

    explained: frozenset
    unexplained: frozenset

    def __len__(self) -> int:
        return len(self.explained) + len(self.unexplained)

    @property
    def coverage(self) -> float:
        """Fraction of the batch explained by at least one template."""
        total = len(self)
        if total == 0:
            return 0.0
        return len(self.explained) / total

    def is_explained(self, lid: Any) -> bool:
        """Whether one batched access found an explanation."""
        return lid in self.explained


class ExplanationEngine:
    """Evaluates a set of explanation templates against an access log."""

    def __init__(
        self,
        db: AnyDatabase,
        templates: Iterable[ExplanationTemplate] = (),
        log_table: str = "Log",
        log_id_attr: str = "Lid",
        use_batch_path: bool = True,
        executor: ExecutorProtocol | None = None,
        semijoin_batch_min: int = SEMIJOIN_BATCH_MIN,
    ) -> None:
        self.db = db
        self.log_table = log_table
        self.log_id_attr = log_id_attr
        #: The executor carries the pipeline toggles (pushdown, distinct
        #: reduction) and the plan cache; pass one in to control them —
        #: ``repro.api.AuditService`` builds it from an AuditConfig.
        #: Defaults to the right executor kind for the database backend.
        self.executor = executor if executor is not None else make_executor(db)
        #: Batches at least this large take the semijoin delta strategy
        #: when :meth:`notify_appended_many` auto-selects (``AuditConfig.
        #: semijoin_batch_min`` routes here).
        self.semijoin_batch_min = semijoin_batch_min
        #: When True (default), whole-log evaluation routes through the
        #: set-at-a-time :meth:`explain_all` semijoin path; False keeps
        #: the per-template point path (the CLI's ``--no-batch``, and the
        #: reference side of the batch differential tests).
        self.use_batch_path = use_batch_path
        self._templates: list[ExplanationTemplate] = []
        self._lid_cache: dict[tuple, set] = {}
        # Memoized derived state (template signatures are expensive to
        # recompute per streamed access; the aggregates are patched in
        # place by notify_appended).
        self._signatures: dict[ExplanationTemplate, tuple] = {}
        self._deduped: tuple[ExplanationTemplate, ...] | None = None
        # (row_count, keys, (key, row) pairs) — owned by
        # repro.core.scan.LogScanner, declared here so the strict scan
        # module may assign it.
        self._scan_order_cache: (
            tuple[int, list[tuple], list[tuple[tuple, Any]]] | None
        ) = None
        self._all_lids: set | None = None
        self._all_explained: set | None = None
        self._unexplained: set | None = None
        for template in templates:
            self.add_template(template)

    # ------------------------------------------------------------------
    # template management
    # ------------------------------------------------------------------
    def add_template(self, template: ExplanationTemplate) -> None:
        """Register one more explanation template.

        Per-template caches stay valid; aggregate views (union, coverage,
        unexplained queue) are recomputed lazily since the newcomer may
        explain accesses no existing template did.
        """
        self._templates.append(template)
        self._deduped = None
        self._all_explained = None
        self._unexplained = None

    @property
    def templates(self) -> tuple[ExplanationTemplate, ...]:
        """The registered templates, deduplicated by condition-set signature."""
        if self._deduped is None:
            self._deduped = tuple(dedupe_templates(self._templates))
        return self._deduped

    def _sig(self, template: ExplanationTemplate) -> tuple:
        """Memoized template signature (the per-template cache key)."""
        sig = self._signatures.get(template)
        if sig is None:
            sig = template.signature()
            self._signatures[template] = sig
        return sig

    # ------------------------------------------------------------------
    # whole-log queries
    # ------------------------------------------------------------------
    def explained_lids(self, template: ExplanationTemplate) -> set:
        """Distinct log ids the template explains (cached per template;
        treat as read-only)."""
        key = self._sig(template)
        if key not in self._lid_cache:
            self._lid_cache[key] = self.executor.distinct_values(
                template.support_query(), AttrRef("L", self.log_id_attr)
            )
        return self._lid_cache[key]

    def all_explained_lids(self) -> set:
        """Union of explained ids over every registered template (cached,
        patched in place by :meth:`notify_appended`; treat as read-only).

        The cold path is the set-at-a-time :meth:`explain_all` when
        ``use_batch_path`` is on (the default), else one full per-template
        evaluation — both warm the same caches and agree exactly (pinned
        by the batch differential suite).
        """
        if self._all_explained is None:
            if self.use_batch_path:
                self.explain_all()
            else:
                out: set = set()
                for template in self.templates:
                    out |= self.explained_lids(template)
                self._all_explained = out
        return self._all_explained

    def all_lids(self) -> set:
        """Every log id in the audited log table (cached; treat as
        read-only)."""
        if self._all_lids is None:
            self._all_lids = self.db.table(self.log_table).distinct_values(
                self.log_id_attr
            )
        return self._all_lids

    def unexplained_lids(self) -> set:
        """Accesses no template explains — the candidate-misuse queue
        (cached, patched in place by :meth:`notify_appended`; treat as
        read-only)."""
        if self._unexplained is None:
            self._unexplained = self.all_lids() - self.all_explained_lids()
        return self._unexplained

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template (the
        paper's headline "over 94% of accesses" number)."""
        total = len(self.all_lids())
        if total == 0:
            return 0.0
        return (total - len(self.unexplained_lids())) / total

    def coverage_counts(self) -> tuple[int, int]:
        """``(total, unexplained)`` log-id counts — the additive form of
        :meth:`coverage`, so a scatter-gather layer can sum counts across
        shards and divide once (shard logs are disjoint)."""
        return len(self.all_lids()), len(self.unexplained_lids())

    def support_counts(
        self, templates: Sequence[ExplanationTemplate]
    ) -> list[int]:
        """Distinct explained-lid counts, one per given template (the
        mining *support* quantity, paper Section 3.1).

        The templates need not be registered; per-template caches are
        shared with :meth:`explained_lids`.  Counts are additive across
        patient-hash shards, so sharded mining support is the per-shard
        sum."""
        return [len(self.explained_lids(t)) for t in templates]

    # ------------------------------------------------------------------
    # per-access explanation
    # ------------------------------------------------------------------
    def explain(self, lid: Any) -> list[ExplanationInstance]:
        """Every explanation instance for one log record, ranked in
        ascending order of path length (paper Section 2.1)."""
        instances: list[ExplanationInstance] = []
        for template in self.templates:
            query = template.instance_query(lid=lid)
            result = self.executor.execute(query)
            lid_pos = result.column_position(AttrRef("L", self.log_id_attr))
            names = [str(c) for c in result.columns]
            for row in result.rows:
                bindings = dict(zip(names, row))
                instances.append(
                    ExplanationInstance(
                        template=template, lid=row[lid_pos], bindings=bindings
                    )
                )
        return rank_instances(instances)

    def explain_or_flag(self, lid: Any) -> tuple[list[ExplanationInstance], bool]:
        """Instances plus a *suspicious* flag (True when unexplained)."""
        instances = self.explain(lid)
        return instances, not instances

    # ------------------------------------------------------------------
    # set-at-a-time (batch semijoin) evaluation
    # ------------------------------------------------------------------
    def explain_batch(self, accesses: Iterable[Any]) -> BatchExplanation:
        """Partition a set of accesses into explained/unexplained in one
        pass, evaluating each template ONCE as a batch semijoin.

        Instead of one point query per (access, template), the executor
        restricts the template's log variable to the whole batch
        (``L.Lid IN accesses``) and returns the explained subset in a
        single pipeline run — O(templates) queries total, independent of
        batch size.  A template whose explained-set cache is warm costs a
        set intersection, no query at all, and templates stop being
        consulted once every batched access is explained.

        Results are identical to the per-access point path (same
        explained sets, same NULL semantics — NULL ids never match and
        land in ``unexplained``); ids absent from the log are simply
        unexplained.  Caches are read, and warmed only when the batch
        covers the whole log (then a template's semijoin result *is* its
        full explained set).
        """
        batch = set(accesses)
        if not batch:
            return BatchExplanation(frozenset(), frozenset())
        target = AttrRef("L", self.log_id_attr)
        covers_all = batch >= self.all_lids()
        explained: set = set()
        for template in self.templates:
            key = self._sig(template)
            cached = self._lid_cache.get(key)
            if cached is not None:
                hits = batch & cached
            else:
                hits = self.executor.distinct_values_in(
                    template.support_query(), target, target, batch
                )
                if covers_all:
                    self._lid_cache[key] = set(hits)
            explained |= hits
            if len(explained) == len(batch):
                break
        return BatchExplanation(
            frozenset(explained), frozenset(batch - explained)
        )

    def explain_all(self) -> BatchExplanation:
        """The whole-log partition, one batch semijoin per template.

        This is the set-at-a-time implementation behind
        :meth:`all_explained_lids`, :meth:`unexplained_lids`, and
        :meth:`coverage` — the aggregate caches are (re)materialized from
        the returned partition.
        """
        result = self.explain_batch(self.all_lids())
        self._all_explained = set(result.explained)
        self._unexplained = set(result.unexplained)
        return result

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def notify_appended(self, lid: Any) -> set:
        """Delta-maintain every cache after appending one log row.

        Re-evaluates each template against just the new row and patches the
        cached explained-id sets, the unexplained queue, and the log-id
        universe in place.  Returns the set of log ids newly explained by
        this append — note that via log self-joins (e.g. the repeat-access
        template) a new row can retroactively explain *older* accesses, all
        of which appear in the returned set.

        Caveat: a template whose cache is cold is warmed over the *full*
        log (one-time cost), and since its pre-append explained set is
        unknowable at that point, its entire explained set is folded into
        the returned value.  Callers needing a strict per-append delta
        should warm the caches first (e.g. via :meth:`all_explained_lids`).
        """
        return self.notify_appended_many([lid])

    def notify_appended_many(
        self, lids: Sequence[Any], use_semijoin: bool | None = None
    ) -> set:
        """Delta-maintain every cache after a batch of log appends.

        One maintenance pass for the whole batch, with two strategies:

        * **point** (``use_semijoin=False``): per (template, appended row,
          log-ranging tuple variable) the executor answers one point
          query — O(templates × len(lids)) total;
        * **semijoin** (``use_semijoin=True``): per (template, log-ranging
          tuple variable) ONE batch semijoin restricts that variable to
          the whole appended set — O(templates) queries, independent of
          batch size.

        ``use_semijoin=None`` (the default) picks semijoin for batches of
        at least ``SEMIJOIN_BATCH_MIN`` ids.  Both strategies compute the
        same delta (the semijoin is exactly the union of the point
        queries; pinned by the property suite), including self-join
        templates retroactively explaining *older* accesses.  The
        appended rows must already be in the log table.  Returns the
        union of newly explained log ids (cold-cache caveat of
        :meth:`notify_appended` applies: templates warmed by this call
        contribute their full explained set).
        """
        lids = list(lids)
        if use_semijoin is None:
            use_semijoin = len(lids) >= self.semijoin_batch_min
        if self._all_lids is not None:
            self._all_lids.update(lids)
        batch = set(lids)
        target = AttrRef("L", self.log_id_attr)
        newly: set = set()
        for template in self.templates:
            key = self._sig(template)
            cached = self._lid_cache.get(key)
            if cached is None:
                # Never evaluated: warm over the full log (which already
                # contains the new rows); one-time cost, delta thereafter.
                self._lid_cache[key] = self.explained_lids(template)
                newly |= self._lid_cache[key]
                continue
            delta: set = set()
            if use_semijoin:
                query = template.support_query()
                for var in query.tuple_vars:
                    if var.table != self.log_table:
                        continue
                    delta |= self.executor.distinct_values_in(
                        query,
                        target,
                        AttrRef(var.alias, self.log_id_attr),
                        batch,
                    )
            else:
                for lid in lids:
                    for restricted in self._point_queries(template, lid):
                        delta |= self.executor.distinct_values(restricted, target)
            delta -= cached
            cached |= delta
            newly |= delta
        if self._all_explained is not None:
            self._all_explained |= newly
        if self._unexplained is not None:
            self._unexplained -= newly
            self._unexplained.update(
                lid for lid in lids if lid not in self.all_explained_lids()
            )
        return newly

    def _point_queries(
        self, template: ExplanationTemplate, lid: Any
    ) -> list[ConjunctiveQuery]:
        """The template's support query pinned to one appended log row.

        One restriction per tuple variable ranging over the log table: an
        explanation involving the new row must bind it to at least one of
        them, so the union of these point queries is exactly the append's
        delta (conjunctive queries are monotone under inserts).
        """
        query = template.support_query()
        out = []
        for var in query.tuple_vars:
            if var.table != self.log_table:
                continue
            pin = Condition(AttrRef(var.alias, self.log_id_attr), "=", Literal(lid))
            out.append(
                ConjunctiveQuery.build(
                    query.tuple_vars,
                    query.conditions + (pin,),
                    query.projection,
                    query.distinct,
                )
            )
        return out

    def invalidate_cache(self) -> None:
        """Drop every cached set, forcing a full rebuild on next read.

        Appends should use :meth:`notify_appended` instead; this remains
        for destructive log mutations (deletes, truncation, reloads)."""
        self._lid_cache.clear()
        self._all_lids = None
        self._all_explained = None
        self._unexplained = None
