"""The explanation engine: apply templates to a log and explain accesses.

This is the user-facing facade of the paper's system.  Given a database
(including its access log) and a set of explanation templates — either
hand-crafted (Section 5.3.1) or mined (Section 3) — the engine answers:

* *Why did access L100 happen?* — :meth:`ExplanationEngine.explain`
  returns ranked natural-language instances (paper Example 1.1).
* *Which accesses does template t explain?* —
  :meth:`ExplanationEngine.explained_lids`.
* *Which accesses can nobody explain?* —
  :meth:`ExplanationEngine.unexplained_lids`, the paper's misuse-detection
  application (Section 1: "reduce the set of accesses that must be
  examined to those that are unexplained").
"""

from __future__ import annotations

from typing import Any, Iterable

from ..db.database import Database
from ..db.executor import Executor
from ..db.query import AttrRef
from .instance import ExplanationInstance, rank_instances
from .template import ExplanationTemplate, dedupe_templates


class ExplanationEngine:
    """Evaluates a set of explanation templates against an access log."""

    def __init__(
        self,
        db: Database,
        templates: Iterable[ExplanationTemplate] = (),
        log_table: str = "Log",
        log_id_attr: str = "Lid",
    ) -> None:
        self.db = db
        self.log_table = log_table
        self.log_id_attr = log_id_attr
        self.executor = Executor(db)
        self._templates: list[ExplanationTemplate] = []
        self._lid_cache: dict[tuple, set] = {}
        for template in templates:
            self.add_template(template)

    # ------------------------------------------------------------------
    # template management
    # ------------------------------------------------------------------
    def add_template(self, template: ExplanationTemplate) -> None:
        """Register one more explanation template."""
        self._templates.append(template)

    @property
    def templates(self) -> tuple[ExplanationTemplate, ...]:
        """The registered templates, deduplicated by condition-set signature."""
        return tuple(dedupe_templates(self._templates))

    # ------------------------------------------------------------------
    # whole-log queries
    # ------------------------------------------------------------------
    def explained_lids(self, template: ExplanationTemplate) -> set:
        """Distinct log ids the template explains (cached per template)."""
        key = template.signature()
        if key not in self._lid_cache:
            self._lid_cache[key] = self.executor.distinct_values(
                template.support_query(), AttrRef("L", self.log_id_attr)
            )
        return self._lid_cache[key]

    def all_explained_lids(self) -> set:
        """Union of explained ids over every registered template."""
        out: set = set()
        for template in self.templates:
            out |= self.explained_lids(template)
        return out

    def all_lids(self) -> set:
        """Every log id in the audited log table."""
        return self.db.table(self.log_table).distinct_values(self.log_id_attr)

    def unexplained_lids(self) -> set:
        """Accesses no template explains — the candidate-misuse queue."""
        return self.all_lids() - self.all_explained_lids()

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template (the
        paper's headline "over 94% of accesses" number)."""
        total = len(self.all_lids())
        if total == 0:
            return 0.0
        return len(self.all_explained_lids()) / total

    # ------------------------------------------------------------------
    # per-access explanation
    # ------------------------------------------------------------------
    def explain(self, lid: Any) -> list[ExplanationInstance]:
        """Every explanation instance for one log record, ranked in
        ascending order of path length (paper Section 2.1)."""
        instances: list[ExplanationInstance] = []
        for template in self.templates:
            query = template.instance_query(lid=lid)
            result = self.executor.execute(query)
            lid_pos = result.column_position(AttrRef("L", self.log_id_attr))
            names = [str(c) for c in result.columns]
            for row in result.rows:
                bindings = dict(zip(names, row))
                instances.append(
                    ExplanationInstance(
                        template=template, lid=row[lid_pos], bindings=bindings
                    )
                )
        return rank_instances(instances)

    def explain_or_flag(self, lid: Any) -> tuple[list[ExplanationInstance], bool]:
        """Instances plus a *suspicious* flag (True when unexplained)."""
        instances = self.explain(lid)
        return instances, not instances

    def invalidate_cache(self) -> None:
        """Drop cached explained-id sets (call after mutating the log)."""
        self._lid_cache.clear()
