"""The explanation engine: apply templates to a log and explain accesses.

This is the user-facing facade of the paper's system.  Given a database
(including its access log) and a set of explanation templates — either
hand-crafted (Section 5.3.1) or mined (Section 3) — the engine answers:

* *Why did access L100 happen?* — :meth:`ExplanationEngine.explain`
  returns ranked natural-language instances (paper Example 1.1).
* *Which accesses does template t explain?* —
  :meth:`ExplanationEngine.explained_lids`.
* *Which accesses can nobody explain?* —
  :meth:`ExplanationEngine.unexplained_lids`, the paper's misuse-detection
  application (Section 1: "reduce the set of accesses that must be
  examined to those that are unexplained").

Incremental maintenance contract
--------------------------------
The engine caches, per template, the set of log ids the template explains,
plus aggregate views (union of explained ids, the unexplained queue, the
log-id universe).  Two maintenance paths exist after the log grows:

* :meth:`ExplanationEngine.notify_appended` **delta-evaluates** each
  template against just the appended log row: for every tuple variable
  ranging over the log table the support query is re-run with that
  variable pinned to the new row (a point query the executor answers via
  index probes), and the resulting newly-explained ids are unioned into
  the caches.  Conjunctive queries are monotone under inserts, so the
  patched caches equal a from-scratch evaluation — the invariant pinned by
  ``tests/test_property_incremental.py``.
* :meth:`ExplanationEngine.invalidate_cache` drops everything, forcing a
  full rebuild on next read.  It remains the correct call after
  *destructive* changes (row deletion, table replacement), which delta
  maintenance deliberately does not model.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..db.database import Database
from ..db.executor import Executor
from ..db.query import AttrRef, Condition, ConjunctiveQuery, Literal
from .instance import ExplanationInstance, rank_instances
from .template import ExplanationTemplate, dedupe_templates


class ExplanationEngine:
    """Evaluates a set of explanation templates against an access log."""

    def __init__(
        self,
        db: Database,
        templates: Iterable[ExplanationTemplate] = (),
        log_table: str = "Log",
        log_id_attr: str = "Lid",
    ) -> None:
        self.db = db
        self.log_table = log_table
        self.log_id_attr = log_id_attr
        self.executor = Executor(db)
        self._templates: list[ExplanationTemplate] = []
        self._lid_cache: dict[tuple, set] = {}
        # Memoized derived state (template signatures are expensive to
        # recompute per streamed access; the aggregates are patched in
        # place by notify_appended).
        self._signatures: dict[ExplanationTemplate, tuple] = {}
        self._deduped: tuple[ExplanationTemplate, ...] | None = None
        self._all_lids: set | None = None
        self._all_explained: set | None = None
        self._unexplained: set | None = None
        for template in templates:
            self.add_template(template)

    # ------------------------------------------------------------------
    # template management
    # ------------------------------------------------------------------
    def add_template(self, template: ExplanationTemplate) -> None:
        """Register one more explanation template.

        Per-template caches stay valid; aggregate views (union, coverage,
        unexplained queue) are recomputed lazily since the newcomer may
        explain accesses no existing template did.
        """
        self._templates.append(template)
        self._deduped = None
        self._all_explained = None
        self._unexplained = None

    @property
    def templates(self) -> tuple[ExplanationTemplate, ...]:
        """The registered templates, deduplicated by condition-set signature."""
        if self._deduped is None:
            self._deduped = tuple(dedupe_templates(self._templates))
        return self._deduped

    def _sig(self, template: ExplanationTemplate) -> tuple:
        """Memoized template signature (the per-template cache key)."""
        sig = self._signatures.get(template)
        if sig is None:
            sig = template.signature()
            self._signatures[template] = sig
        return sig

    # ------------------------------------------------------------------
    # whole-log queries
    # ------------------------------------------------------------------
    def explained_lids(self, template: ExplanationTemplate) -> set:
        """Distinct log ids the template explains (cached per template;
        treat as read-only)."""
        key = self._sig(template)
        if key not in self._lid_cache:
            self._lid_cache[key] = self.executor.distinct_values(
                template.support_query(), AttrRef("L", self.log_id_attr)
            )
        return self._lid_cache[key]

    def all_explained_lids(self) -> set:
        """Union of explained ids over every registered template (cached,
        patched in place by :meth:`notify_appended`; treat as read-only)."""
        if self._all_explained is None:
            out: set = set()
            for template in self.templates:
                out |= self.explained_lids(template)
            self._all_explained = out
        return self._all_explained

    def all_lids(self) -> set:
        """Every log id in the audited log table (cached; treat as
        read-only)."""
        if self._all_lids is None:
            self._all_lids = self.db.table(self.log_table).distinct_values(
                self.log_id_attr
            )
        return self._all_lids

    def unexplained_lids(self) -> set:
        """Accesses no template explains — the candidate-misuse queue
        (cached, patched in place by :meth:`notify_appended`; treat as
        read-only)."""
        if self._unexplained is None:
            self._unexplained = self.all_lids() - self.all_explained_lids()
        return self._unexplained

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template (the
        paper's headline "over 94% of accesses" number)."""
        total = len(self.all_lids())
        if total == 0:
            return 0.0
        return (total - len(self.unexplained_lids())) / total

    # ------------------------------------------------------------------
    # per-access explanation
    # ------------------------------------------------------------------
    def explain(self, lid: Any) -> list[ExplanationInstance]:
        """Every explanation instance for one log record, ranked in
        ascending order of path length (paper Section 2.1)."""
        instances: list[ExplanationInstance] = []
        for template in self.templates:
            query = template.instance_query(lid=lid)
            result = self.executor.execute(query)
            lid_pos = result.column_position(AttrRef("L", self.log_id_attr))
            names = [str(c) for c in result.columns]
            for row in result.rows:
                bindings = dict(zip(names, row))
                instances.append(
                    ExplanationInstance(
                        template=template, lid=row[lid_pos], bindings=bindings
                    )
                )
        return rank_instances(instances)

    def explain_or_flag(self, lid: Any) -> tuple[list[ExplanationInstance], bool]:
        """Instances plus a *suspicious* flag (True when unexplained)."""
        instances = self.explain(lid)
        return instances, not instances

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def notify_appended(self, lid: Any) -> set:
        """Delta-maintain every cache after appending one log row.

        Re-evaluates each template against just the new row and patches the
        cached explained-id sets, the unexplained queue, and the log-id
        universe in place.  Returns the set of log ids newly explained by
        this append — note that via log self-joins (e.g. the repeat-access
        template) a new row can retroactively explain *older* accesses, all
        of which appear in the returned set.

        Caveat: a template whose cache is cold is warmed over the *full*
        log (one-time cost), and since its pre-append explained set is
        unknowable at that point, its entire explained set is folded into
        the returned value.  Callers needing a strict per-append delta
        should warm the caches first (e.g. via :meth:`all_explained_lids`).
        """
        return self.notify_appended_many([lid])

    def notify_appended_many(self, lids: Sequence[Any]) -> set:
        """Delta-maintain every cache after a batch of log appends.

        One maintenance pass for the whole batch: per (template, appended
        row, log-ranging tuple variable) the executor answers one point
        query — O(templates × len(lids)) total — and the aggregate views
        are patched once at the end.  The appended rows must already be in
        the log table.  Returns the union of newly explained log ids
        (cold-cache caveat of :meth:`notify_appended` applies: templates
        warmed by this call contribute their full explained set).
        """
        lids = list(lids)
        if self._all_lids is not None:
            self._all_lids.update(lids)
        newly: set = set()
        for template in self.templates:
            key = self._sig(template)
            cached = self._lid_cache.get(key)
            if cached is None:
                # Never evaluated: warm over the full log (which already
                # contains the new rows); one-time cost, delta thereafter.
                self._lid_cache[key] = self.explained_lids(template)
                newly |= self._lid_cache[key]
                continue
            delta: set = set()
            for lid in lids:
                for restricted in self._point_queries(template, lid):
                    delta |= self.executor.distinct_values(
                        restricted, AttrRef("L", self.log_id_attr)
                    )
            delta -= cached
            cached |= delta
            newly |= delta
        if self._all_explained is not None:
            self._all_explained |= newly
        if self._unexplained is not None:
            self._unexplained -= newly
            self._unexplained.update(
                lid for lid in lids if lid not in self.all_explained_lids()
            )
        return newly

    def _point_queries(
        self, template: ExplanationTemplate, lid: Any
    ) -> list[ConjunctiveQuery]:
        """The template's support query pinned to one appended log row.

        One restriction per tuple variable ranging over the log table: an
        explanation involving the new row must bind it to at least one of
        them, so the union of these point queries is exactly the append's
        delta (conjunctive queries are monotone under inserts).
        """
        query = template.support_query()
        out = []
        for var in query.tuple_vars:
            if var.table != self.log_table:
                continue
            pin = Condition(AttrRef(var.alias, self.log_id_attr), "=", Literal(lid))
            out.append(
                ConjunctiveQuery.build(
                    query.tuple_vars,
                    query.conditions + (pin,),
                    query.projection,
                    query.distinct,
                )
            )
        return out

    def invalidate_cache(self) -> None:
        """Drop every cached set, forcing a full rebuild on next read.

        Appends should use :meth:`notify_appended` instead; this remains
        for destructive log mutations (deletes, truncation, reloads)."""
        self._lid_cache.clear()
        self._all_lids = None
        self._all_explained = None
        self._unexplained = None
