"""Time-sliced, suspendable full-log scans (the web-preemption model).

The paper's compliance workload — ``explain_all``/``report`` over the
whole access log — is naturally one monolithic evaluation, which means
one slow auditor holds a reader slot for the entire scan.  This module
breaks that evaluation into *bounded slices*: each :meth:`LogScanner.
slice` call scans at most ``page_rows`` log rows (and optionally at most
``quantum_seconds`` of wall clock) in the stable ``(date, lid)`` order,
classifies them through the engine's batch-semijoin path, and returns
the position to resume from.

The design follows SaGe-style web preemption: the scanner itself is
**stateless** — all suspended state is the ``(date, lid)`` position of
the last classified row (plus whatever accumulators the caller keeps),
so a suspended scan can resume on a *different* scanner, engine, or
process, as long as it sees the same log.  Rows appended *behind* the
position (back-dated ingest) are, by construction, not part of the
remaining walk — exactly the snapshot semantics of the wire tier's
key-based queue cursors.

Per-slice work is bounded even on a cold engine: one batch semijoin per
template restricted to the slice's ids, never a whole-log evaluation.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from .engine import ExplanationEngine

#: Rows classified between wall-clock checks when a quantum is set.  The
#: first chunk always completes, so every slice makes progress no matter
#: how small the quantum.
QUANTUM_CHECK_ROWS = 64


@dataclass(frozen=True)
class ScanRow:
    """One scanned log access, already classified."""

    lid: Any
    date: Any
    user: Any
    patient: Any
    explained: bool

    @property
    def key(self) -> tuple:
        """Position of this row in the stable scan order."""
        return (self.date, self.lid)


@dataclass(frozen=True)
class SliceResult:
    """Outcome of one bounded scan slice.

    ``rows`` are in ascending ``(date, lid)`` order; ``after`` is the
    position to resume from (the key of the last row, or the input
    position when the slice was empty); ``done`` means nothing remains
    past ``after``.
    """

    rows: tuple[ScanRow, ...]
    after: tuple | None
    done: bool


class LogScanner:
    """Stateless bounded-slice evaluator over an engine's access log.

    Construction is cheap (column-index lookups only); a scanner holds
    no scan state, so one instance can serve interleaved scans and a
    fresh instance resumes any suspended position.
    """

    def __init__(
        self,
        engine: ExplanationEngine,
        check_rows: int = QUANTUM_CHECK_ROWS,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.engine = engine
        self.check_rows = max(1, int(check_rows))
        self.clock = clock if clock is not None else time.monotonic
        log = engine.db.table(engine.log_table)
        schema = log.schema
        self._log = log
        self._lid_i = schema.column_index(engine.log_id_attr)
        self._date_i = schema.column_index("Date")
        self._user_i = schema.column_index("User")
        self._patient_i = schema.column_index("Patient")

    def slice(
        self,
        after: tuple | None,
        page_rows: int,
        quantum_seconds: float | None = None,
    ) -> SliceResult:
        """Scan and classify the next bounded slice past ``after``.

        At most ``page_rows`` rows are returned; when ``quantum_seconds``
        is given the slice additionally stops at the first
        :data:`QUANTUM_CHECK_ROWS` boundary past the deadline (always
        completing at least one chunk, so progress is guaranteed).
        """
        if page_rows < 1:
            raise ValueError(f"page_rows must be >= 1, got {page_rows}")
        lid_i, date_i = self._lid_i, self._date_i
        keys, ordered = self._ordered()
        start = 0 if after is None else bisect.bisect_right(keys, after)
        if start >= len(ordered):
            return SliceResult(rows=(), after=after, done=True)
        batch = ordered[start : start + page_rows]
        remaining = len(ordered) - start
        deadline = None if quantum_seconds is None else self.clock() + quantum_seconds
        # Without a wall-clock budget the whole slice is one semijoin
        # batch per template; with one, smaller chunks bound the overrun
        # past the deadline to one chunk's worth of evaluation.
        step = len(batch) if deadline is None else self.check_rows
        rows: list[ScanRow] = []
        for start in range(0, len(batch), step):
            chunk = batch[start : start + step]
            partition = self.engine.explain_batch(r[lid_i] for _, r in chunk)
            for _, r in chunk:
                rows.append(
                    ScanRow(
                        lid=r[lid_i],
                        date=r[date_i],
                        user=r[self._user_i],
                        patient=r[self._patient_i],
                        explained=partition.is_explained(r[lid_i]),
                    )
                )
            if deadline is not None and self.clock() >= deadline:
                break
        return SliceResult(
            rows=tuple(rows),
            after=rows[-1].key,
            done=len(rows) == remaining,
        )

    def _ordered(self) -> tuple[list[tuple], list[tuple[tuple, Any]]]:
        """The log in ``(date, lid)`` order, as ``(keys, (key, row)
        pairs)`` — cached on the engine so a slice costs a bisect plus
        the page, not an O(n log n) re-filter and re-sort per slice.

        The log is append-only, so the cache is keyed by row count and
        rebuilt only when rows arrived since it was built; a back-dated
        append lands in order like any other.  Writers are
        excluded by the service's lock during a slice; concurrent
        readers at worst rebuild the same value (assignment is atomic).
        """
        lid_i, date_i = self._lid_i, self._date_i
        count = len(self._log)
        cached = self.engine._scan_order_cache
        if cached is not None and cached[0] == count:
            return cached[1], cached[2]
        pairs = sorted(((r[date_i], r[lid_i]), r) for r in self._log.rows())
        keys = [key for key, _ in pairs]
        self.engine._scan_order_cache = (count, keys, pairs)
        return keys, pairs


__all__ = ["LogScanner", "QUANTUM_CHECK_ROWS", "ScanRow", "SliceResult"]
