"""Schema-level nodes and edges of the explanation graph.

Paper Definition 1 models an explanation as a path through a graph *G*
whose nodes are attributes and whose edges come from (i) attributes
sharing a tuple variable and (ii) comparison conditions.  At mining time
(Section 3.1) the admissible *join* edges are restricted to:

* equi-joins along declared key/foreign-key relationships,
* equi-joins explicitly provided by the administrator
  (:attr:`EdgeKind.ADMIN`), and
* self-joins on administrator-approved attributes
  (:attr:`EdgeKind.SELF_JOIN`).

Intra-tuple-variable movement is implicit and never materialized as an
edge object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SchemaAttr:
    """A node of the explanation graph: one attribute of one table."""

    table: str
    attr: str

    def __str__(self) -> str:
        return f"{self.table}.{self.attr}"


class EdgeKind(enum.Enum):
    """Provenance of a join edge (paper Section 3.1 assumptions 2-3)."""

    FOREIGN_KEY = "fk"
    ADMIN = "admin"
    SELF_JOIN = "self_join"


@dataclass(frozen=True, order=True)
class SchemaEdge:
    """A directed, schema-level equi-join edge ``src -> dst``.

    Direction encodes traversal order along a path, not semantics: for
    every relationship both directed forms are registered (a path may
    walk an FK from either side).  A :attr:`EdgeKind.SELF_JOIN` edge has
    ``src.table == dst.table`` and, when traversed, introduces a second
    tuple variable over the same table.
    """

    src: SchemaAttr
    dst: SchemaAttr
    kind: EdgeKind

    def __post_init__(self) -> None:
        if self.kind is EdgeKind.SELF_JOIN and self.src.table != self.dst.table:
            raise ValueError(
                f"self-join edge must stay within one table: {self.src} -> {self.dst}"
            )

    @property
    def is_self_join(self) -> bool:
        """True for administrator-permitted self-join edges."""
        return self.kind is EdgeKind.SELF_JOIN

    def reversed(self) -> "SchemaEdge":
        """The same relationship traversed in the opposite direction."""
        return SchemaEdge(self.dst, self.src, self.kind)

    def __str__(self) -> str:
        return f"{self.src} = {self.dst} [{self.kind.value}]"
