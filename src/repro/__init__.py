"""repro — Explanation-Based Auditing (Fabbri & LeFevre, VLDB 2011).

A complete, from-scratch reproduction of the paper's system:

* :mod:`repro.db` — the relational substrate (in-memory engine standing in
  for PostgreSQL);
* :mod:`repro.core` — explanation templates, the explanation graph, and
  the one-way / two-way / bridged mining algorithms;
* :mod:`repro.groups` — collaborative-group inference (W = AᵀA +
  weighted-modularity clustering);
* :mod:`repro.ehr` — a synthetic CareWeb-like hospital substituting for
  the University of Michigan Health System data;
* :mod:`repro.audit` — hand-crafted templates, the patient portal, and
  misuse-detection reports;
* :mod:`repro.evalx` — metrics and one experiment per paper figure/table.

The **public API** lives in :mod:`repro.api` — a unified, thread-safe
:class:`~repro.api.AuditService` facade with typed requests/responses and
one :class:`~repro.api.AuditConfig` object::

    from repro.api import AuditService

    with AuditService.open("hospital/") as service:
        print(service.report(limit=10).summary())

The pre-``repro.api`` entry points (``ExplanationEngine``,
``AccessMonitor``, ``PatientPortal``, ``ComplianceAuditor``, the miners)
remain importable from this module as deprecation shims: accessing them
here emits a :class:`DeprecationWarning` pointing at the ``repro.api``
replacement, while the classes themselves (identical objects, importable
warning-free from their defining submodules) keep working.
"""

import warnings as _warnings

from .core import (
    DecorationMiner,
    EdgeKind,
    ExplanationInstance,
    ExplanationTemplate,
    MinedTemplate,
    MiningConfig,
    MiningResult,
    Path,
    ReviewStatus,
    SchemaAttr,
    SchemaEdge,
    SchemaGraph,
    SupportConfig,
    SupportEvaluator,
    TemplateLibrary,
)
from .db import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    TableSchema,
    TupleVar,
)
from .ehr import SimulationConfig, SimulationResult, simulate
from .evalx import CareWebStudy
from .groups import GroupHierarchy, build_groups_table, hierarchy_from_log

__version__ = "1.0.0"

#: Deprecated top-level names -> (defining module, attribute, replacement).
#: Resolved lazily via PEP 562 so access emits a DeprecationWarning while
#: returning the *same* class object the submodule defines.
_DEPRECATED_ENTRY_POINTS = {
    "ExplanationEngine": (
        "repro.core.engine",
        "ExplanationEngine",
        "repro.api.AuditService.open(...)",
    ),
    "AccessMonitor": (
        "repro.audit.streaming",
        "AccessMonitor",
        "repro.api.AuditService.ingest/ingest_many",
    ),
    "PatientPortal": (
        "repro.audit.portal",
        "PatientPortal",
        "repro.api.AuditService.patient_report",
    ),
    "ComplianceAuditor": (
        "repro.audit.report",
        "ComplianceAuditor",
        "repro.api.AuditService.report",
    ),
    "OneWayMiner": (
        "repro.core.mining",
        "OneWayMiner",
        "repro.api.AuditService.mine(MineRequest(algorithm='one-way'))",
    ),
    "TwoWayMiner": (
        "repro.core.mining",
        "TwoWayMiner",
        "repro.api.AuditService.mine(MineRequest(algorithm='two-way'))",
    ),
    "BridgedMiner": (
        "repro.core.mining",
        "BridgedMiner",
        "repro.api.AuditService.mine(MineRequest(algorithm='bridge'))",
    ),
}


def __getattr__(name: str):
    """Deprecation shims for the pre-``repro.api`` entry points."""
    if name in _DEPRECATED_ENTRY_POINTS:
        module_name, attr, replacement = _DEPRECATED_ENTRY_POINTS[name]
        _warnings.warn(
            f"repro.{name} is deprecated; use {replacement} "
            f"(or import {module_name}.{attr} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AccessMonitor",
    "AttrRef",
    "BridgedMiner",
    "CareWebStudy",
    "ComplianceAuditor",
    "Condition",
    "ConjunctiveQuery",
    "Database",
    "DecorationMiner",
    "EdgeKind",
    "Executor",
    "ExplanationEngine",
    "ExplanationInstance",
    "ExplanationTemplate",
    "GroupHierarchy",
    "Literal",
    "MinedTemplate",
    "MiningConfig",
    "MiningResult",
    "OneWayMiner",
    "Path",
    "PatientPortal",
    "ReviewStatus",
    "SchemaAttr",
    "SchemaEdge",
    "SchemaGraph",
    "SimulationConfig",
    "SimulationResult",
    "SupportConfig",
    "SupportEvaluator",
    "TableSchema",
    "TemplateLibrary",
    "TupleVar",
    "TwoWayMiner",
    "__version__",
    "build_groups_table",
    "hierarchy_from_log",
    "simulate",
]
