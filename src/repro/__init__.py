"""repro — Explanation-Based Auditing (Fabbri & LeFevre, VLDB 2011).

A complete, from-scratch reproduction of the paper's system:

* :mod:`repro.db` — the relational substrate (in-memory engine standing in
  for PostgreSQL);
* :mod:`repro.core` — explanation templates, the explanation graph, and
  the one-way / two-way / bridged mining algorithms;
* :mod:`repro.groups` — collaborative-group inference (W = AᵀA +
  weighted-modularity clustering);
* :mod:`repro.ehr` — a synthetic CareWeb-like hospital substituting for
  the University of Michigan Health System data;
* :mod:`repro.audit` — hand-crafted templates, the patient portal, and
  misuse-detection reports;
* :mod:`repro.evalx` — metrics and one experiment per paper figure/table.

Quickstart::

    from repro import CareWebStudy, MiningConfig, OneWayMiner

    study = CareWebStudy.prepare()          # simulate + infer groups
    result = OneWayMiner(
        study.mining_db(), study.mining_graph(),
        MiningConfig(support_fraction=0.01, max_length=4, max_tables=3),
    ).mine()
    for mined in result.templates[:5]:
        print(mined.support, mined.template.to_sql())
"""

from .core import (
    BridgedMiner,
    DecorationMiner,
    EdgeKind,
    ExplanationEngine,
    ExplanationInstance,
    ExplanationTemplate,
    MinedTemplate,
    MiningConfig,
    MiningResult,
    OneWayMiner,
    Path,
    ReviewStatus,
    SchemaAttr,
    SchemaEdge,
    SchemaGraph,
    SupportConfig,
    SupportEvaluator,
    TemplateLibrary,
    TwoWayMiner,
)
from .db import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    TableSchema,
    TupleVar,
)
from .ehr import SimulationConfig, SimulationResult, simulate
from .evalx import CareWebStudy
from .groups import GroupHierarchy, build_groups_table, hierarchy_from_log

__version__ = "1.0.0"

__all__ = [
    "AttrRef",
    "BridgedMiner",
    "CareWebStudy",
    "Condition",
    "ConjunctiveQuery",
    "Database",
    "DecorationMiner",
    "EdgeKind",
    "Executor",
    "ExplanationEngine",
    "ExplanationInstance",
    "ExplanationTemplate",
    "GroupHierarchy",
    "Literal",
    "MinedTemplate",
    "MiningConfig",
    "MiningResult",
    "OneWayMiner",
    "Path",
    "ReviewStatus",
    "SchemaAttr",
    "SchemaEdge",
    "SchemaGraph",
    "SimulationConfig",
    "SimulationResult",
    "SupportConfig",
    "SupportEvaluator",
    "TableSchema",
    "TemplateLibrary",
    "TupleVar",
    "TwoWayMiner",
    "__version__",
    "build_groups_table",
    "hierarchy_from_log",
    "simulate",
]
