"""SQL-backed tables, catalog, and executor — the SQLite storage backend.

This module is the storage half of the pluggable-backend seam (the
compilation half lives in :mod:`repro.db.dialect`; the statement runner
in :mod:`repro.db.drivers`).  It mirrors the in-memory substrate
surface-for-surface:

* :class:`SqlTable` — the read/write surface of
  :class:`~repro.db.table.Table` that the audit tiers actually touch
  (``rows``/``lookup``/``distinct_values``/``insert``/``insert_many``),
  evaluated by SQL statements instead of Python lists.  Row validation
  runs through the *same* :func:`~repro.db.table.coerce_row` /
  :func:`~repro.db.table.validate_row` helpers as the in-memory table,
  so both backends reject exactly the same rows with the same errors.
* :class:`SqlDatabase` — the catalog surface of
  :class:`~repro.db.database.Database`, with every table's
  :class:`~repro.db.schema.TableSchema` persisted as JSON in the
  driver's ``_repro_schema`` table so reopening a database file rebuilds
  the typed catalog without the original source.
* :class:`SqlExecutor` — the query surface of
  :class:`~repro.db.executor.Executor` (``execute`` /
  ``count_distinct`` / ``distinct_values`` / ``distinct_values_in``),
  pushing every explanation query down to the database as parameterized
  SQL.  Compiled statements are memoized in the shared
  :class:`~repro.db.optimizer.PlanCache` under ``"sql"``-tagged keys.
* :func:`open_sql_database` — the opener: reuse an already-ingested
  database file, or build one by streaming a saved CSV directory (or
  copying an in-memory :class:`~repro.db.database.Database`) into it.

NULL semantics, result multiplicity, and error messages are pinned
byte-identical to the in-memory engine by the backend-parameterized
differential suites (``tests/test_differential_executor.py``,
``tests/test_sql_backend.py``).
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from .csvio import _schema_from_json, _schema_to_json, iter_table_csv, read_manifest
from .database import Database
from .dialect import (
    CompiledQuery,
    check_connected,
    compile_count_distinct,
    compile_distinct_values,
    compile_distinct_values_in,
    compile_execute,
    condition_params,
    decode_value,
    encode_value,
    quote_ident,
)
from .drivers.sqlite import SCHEMA_TABLE, SqliteDriver
from .errors import QueryError, SchemaError, UnknownTableError
from .executor import QueryResult
from .optimizer import PlanCache, query_shape, shared_plan_cache
from .query import AttrRef, ConjunctiveQuery, cond_attr_refs
from .schema import ColumnType, ForeignKey, TableSchema
from .table import coerce_row, validate_row

#: Catalog key under which the database's display name is stored (kept in
#: ``_repro_schema`` but filtered out of the table catalog — user table
#: names are alphanumeric, so the dunder name cannot collide).
_NAME_KEY = "__database__"

#: Column types whose stored form differs from the Python domain (all
#: others pass through undecoded — the row fast path).
_DECODED_TYPES = frozenset({ColumnType.DATE, ColumnType.BOOL})


def _decode_rows(
    rows: list[tuple[Any, ...]], decoders: Sequence[ColumnType]
) -> list[tuple[Any, ...]]:
    """Decode driver rows back to the Python domain (fast path: rows whose
    columns all store verbatim are returned as-is)."""
    if not any(t in _DECODED_TYPES for t in decoders):
        return rows
    return [
        tuple(decode_value(v, t) for v, t in zip(row, decoders)) for row in rows
    ]


def _encoded_rows(
    schema: TableSchema, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
) -> Iterator[list[Any]]:
    """Coerce, validate, and encode rows for ingest, streaming one at a
    time (the beyond-RAM CSV path never materializes the table)."""
    for row in rows:
        tup = coerce_row(schema, row)
        validate_row(schema, tup)
        yield [encode_value(v) for v in tup]


class SqlTable:
    """A SQL-backed relation presenting the :class:`~repro.db.table.Table`
    read/write surface the audit tiers use.

    The in-memory table's cache-building internals (columnar mirrors,
    hash indexes, projection indexes) have no equivalent here — the
    database's own B-tree indexes play that role, and
    :meth:`invalidate_caches` is a no-op because there is nothing to
    invalidate.
    """

    def __init__(self, driver: SqliteDriver, schema: TableSchema) -> None:
        self.driver = driver
        self.schema = schema
        cols = ", ".join(quote_ident(c.name) for c in schema.columns)
        self._select_all = (
            f"SELECT {cols} FROM {quote_ident(schema.name)} ORDER BY rowid"
        )
        self._decoders = tuple(c.ctype for c in schema.columns)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row (positional or mapping) — same validation and
        errors as the in-memory table."""
        tup = coerce_row(self.schema, row)
        validate_row(self.schema, tup)
        self.driver.ingest_many(self.schema, [[encode_value(v) for v in tup]])

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted.

        Mirrors the in-memory semantics: on a validation error the rows
        validated so far are still persisted before the error propagates
        (same observable state as repeated :meth:`insert`).
        """
        encoded: list[list[Any]] = []
        try:
            for row in rows:
                tup = coerce_row(self.schema, row)
                validate_row(self.schema, tup)
                encoded.append([encode_value(v) for v in tup])
        except Exception:
            self.driver.ingest_many(self.schema, encoded)
            raise
        return self.driver.ingest_many(self.schema, encoded)

    def clear(self) -> None:
        """Remove all rows."""
        self.driver.execute(f"DELETE FROM {quote_ident(self.schema.name)}")

    def invalidate_caches(self) -> None:
        """No-op: the SQL backend keeps no Python-side caches."""

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.driver.table_rowcount(self.schema.name)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows())

    def rows(self) -> list[tuple[Any, ...]]:
        """All rows in insertion (rowid) order, decoded."""
        return _decode_rows(self.driver.execute(self._select_all), self._decoders)

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in insertion order."""
        i = self.schema.column_index(column)
        rows = self.driver.execute(
            f"SELECT {quote_ident(column)} FROM "
            f"{quote_ident(self.schema.name)} ORDER BY rowid"
        )
        ctype = self._decoders[i]
        return [decode_value(r[0], ctype) for r in rows]

    def distinct_values(self, column: str) -> set:
        """Distinct values of one column (NULLs excluded) — identical
        semantics to :meth:`repro.db.table.Table.distinct_values`."""
        ctype = self._decoders[self.schema.column_index(column)]
        rows = self.driver.execute(
            f"SELECT DISTINCT {quote_ident(column)} FROM "
            f"{quote_ident(self.schema.name)} "
            f"WHERE {quote_ident(column)} IS NOT NULL"
        )
        return {decode_value(r[0], ctype) for r in rows}

    def ndv(self, column: str) -> int:
        """Number of distinct non-NULL values (optimizer statistic)."""
        self.schema.column_index(column)  # raises UnknownColumnError
        rows = self.driver.execute(
            f"SELECT COUNT(DISTINCT {quote_ident(column)}) FROM "
            f"{quote_ident(self.schema.name)}"
        )
        return int(rows[0][0])

    def lookup(self, column: str, value: Any) -> list[tuple[Any, ...]]:
        """Rows where ``column == value``, in insertion order.

        A ``None`` probe matches stored NULLs (``IS NULL``) — the
        in-memory hash index keeps a NULL bucket, so parity requires the
        same here.
        """
        self.schema.column_index(column)  # raises UnknownColumnError
        base = (
            f"SELECT {', '.join(quote_ident(c.name) for c in self.schema.columns)} "
            f"FROM {quote_ident(self.schema.name)} WHERE {quote_ident(column)}"
        )
        if value is None:
            rows = self.driver.execute(f"{base} IS NULL ORDER BY rowid")
        else:
            rows = self.driver.execute(
                f"{base} = ? ORDER BY rowid", (encode_value(value),)
            )
        return _decode_rows(rows, self._decoders)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SqlTable {self.schema.name} rows={len(self)}>"


class SqlDatabase:
    """A SQL-backed catalog presenting the
    :class:`~repro.db.database.Database` surface.

    Table schemas live in the driver's ``_repro_schema`` catalog table,
    so a :class:`SqlDatabase` reopened from a file (via
    :func:`open_sql_database`) restores the full typed catalog — that is
    the restart-survival property the sharded service relies on.
    """

    def __init__(
        self,
        driver: SqliteDriver,
        name: str = "db",
        schemas: Iterable[TableSchema] = (),
    ) -> None:
        self.name = name
        self.driver = driver
        self._tables: dict[str, SqlTable] = {}
        for schema in schemas:
            self._tables[schema.name] = SqlTable(driver, schema)

    # ------------------------------------------------------------------
    # catalog operations
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> SqlTable:
        """Create an empty table — same catalog checks and errors as the
        in-memory :meth:`~repro.db.database.Database.create_table`."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"table {schema.name!r} declares FK to missing table "
                    f"{fk.ref_table!r}"
                )
        self.driver.create_table(schema, reset=True)
        self.driver.register_schema(schema, _schema_to_json(schema))
        table = SqlTable(self.driver, schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog and the database file."""
        if name not in self._tables:
            raise UnknownTableError(name)
        self.driver.execute(f"DROP TABLE IF EXISTS {quote_ident(name)}")
        self.driver.execute(
            f"DELETE FROM {quote_ident(SCHEMA_TABLE)} WHERE name = ?", (name,)
        )
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name in self._tables

    def table(self, name: str) -> SqlTable:
        """Look up a table by name (raises :class:`UnknownTableError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def table_names(self) -> list[str]:
        """Names of all catalog tables, in creation order."""
        return list(self._tables)

    def tables(self) -> Iterator[SqlTable]:
        """Iterate over all tables."""
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def close(self) -> None:
        """Close the underlying driver connection (reopenable)."""
        self.driver.close()

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------
    def foreign_keys(self) -> list[tuple[str, ForeignKey]]:
        """All declared FKs as ``(owning_table, fk)`` pairs."""
        out: list[tuple[str, ForeignKey]] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                out.append((table.schema.name, fk))
        return out

    def validate_referential_integrity(self) -> list[str]:
        """Check every FK value appears in the referenced column (same
        report format as the in-memory database)."""
        violations: list[str] = []
        for owner, fk in self.foreign_keys():
            if fk.ref_table not in self._tables:
                violations.append(f"{owner}.{fk.column}: missing table {fk.ref_table}")
                continue
            ref_values = self._tables[fk.ref_table].distinct_values(fk.ref_column)
            col_idx = self._tables[owner].schema.column_index(fk.column)
            for row in self._tables[owner].rows():
                value = row[col_idx]
                if value is not None and value not in ref_values:
                    violations.append(
                        f"{owner}.{fk.column}={value!r} not found in "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )
        return violations

    def total_rows(self) -> int:
        """Sum of row counts across every table."""
        return sum(len(t) for t in self._tables.values())

    def summary(self) -> str:
        """One line per table: name and row count."""
        lines = [f"database {self.name!r}: {len(self._tables)} tables"]
        for name, table in sorted(self._tables.items()):
            lines.append(f"  {name:<16} {len(table):>8} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SqlDatabase {self.name!r} tables={len(self._tables)}>"


class SqlExecutor:
    """Evaluates :class:`ConjunctiveQuery` objects by SQL pushdown.

    Signature-compatible with the in-memory
    :class:`~repro.db.executor.Executor`: ``predicate_pushdown`` and
    ``vectorized`` are accepted for parity but have no effect (predicate
    pushdown is inherent to SQL evaluation; there is no separate
    vectorized path).  ``distinct_reduction`` still selects the paper's
    multiplicity-reduction rewrite — with it, each tuple variable of a
    distinct query becomes a ``SELECT DISTINCT`` subselect.

    Compiled SQL is memoized in ``plan_cache`` (shared process-wide by
    default, like in-memory plans) keyed on query shape, so the
    thousands of per-access point queries a template generates compile
    once.  ``queries_executed`` counts public calls — a batch semijoin
    is ONE query no matter how many parameter chunks the driver runs.
    """

    def __init__(
        self,
        db: SqlDatabase,
        allow_cartesian: bool = False,
        distinct_reduction: bool = True,
        predicate_pushdown: bool = True,
        plan_cache: PlanCache | None = None,
        vectorized: bool = True,
    ) -> None:
        self.db = db
        self.allow_cartesian = allow_cartesian
        self.distinct_reduction = distinct_reduction
        self.predicate_pushdown = predicate_pushdown
        self.vectorized = vectorized
        self.plan_cache = plan_cache if plan_cache is not None else shared_plan_cache()
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # public query surface (mirrors the in-memory Executor)
    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveQuery) -> QueryResult:
        """Run ``query`` and return its (optionally distinct) projection."""
        self.queries_executed += 1
        self._validate(query)
        compiled = self._compiled("execute", query)
        rows = self.db.driver.execute(compiled.sql, condition_params(query))
        return QueryResult(
            tuple(query.projection), _decode_rows(rows, compiled.decoders)
        )

    def count_distinct(
        self, query: ConjunctiveQuery, attr: AttrRef | None = None
    ) -> int:
        """``COUNT(DISTINCT attr)`` with NULL counted as one value (the
        in-memory set semantics — see :func:`~repro.db.dialect.compile_count_distinct`)."""
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        compiled = self._compiled("count", query, attr=target)
        rows = self.db.driver.execute(compiled.sql, condition_params(query))
        return int(rows[0][0])

    def distinct_values(
        self, query: ConjunctiveQuery, attr: AttrRef | None = None
    ) -> set:
        """The distinct value set of one attribute over the query result."""
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        compiled = self._compiled("values", query, attr=target)
        rows = self.db.driver.execute(compiled.sql, condition_params(query))
        ctype = compiled.decoders[0]
        return {decode_value(r[0], ctype) for r in rows}

    def distinct_values_in(
        self,
        query: ConjunctiveQuery,
        attr: AttrRef,
        in_attr: AttrRef,
        in_values: Sequence[Any],
    ) -> set:
        """Batch semijoin: distinct ``attr`` values with ``in_attr``
        restricted to ``in_values``.

        NULL binding values are stripped before compilation (they can
        never match — in-memory parity), and the driver runs the
        compiled statement once per host-parameter-safe chunk of the
        binding set; the union of chunks equals the unchunked result.
        """
        self.queries_executed += 1
        self._validate(query)
        values = {v for v in in_values if v is not None}
        if not values:
            return set()
        compiled = self._compiled("semijoin", query, attr=attr, in_attr=in_attr)
        rows = self.db.driver.execute_batch(
            compiled.sql,
            condition_params(query),
            [encode_value(v) for v in values],
        )
        ctype = compiled.decoders[0]
        return {decode_value(r[0], ctype) for r in rows}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, query: ConjunctiveQuery) -> None:
        """Same validation pass (and errors) as the in-memory executor."""
        for var in query.tuple_vars:
            schema = self.db.table(var.table).schema  # raises UnknownTableError
            for cond in query.conditions:
                for ref in cond_attr_refs(cond):
                    if ref.alias == var.alias and not schema.has_column(ref.attr):
                        raise QueryError(f"no column {ref.attr!r} in {var.table!r}")
            for ref in query.projection:
                if ref.alias == var.alias and not schema.has_column(ref.attr):
                    raise QueryError(f"no column {ref.attr!r} in {var.table!r}")

    def _compiled(
        self,
        form: str,
        query: ConjunctiveQuery,
        attr: AttrRef | None = None,
        in_attr: AttrRef | None = None,
    ) -> CompiledQuery:
        """The memoized compiled statement for one query form.

        Keys carry the database identity and a ``"sql"`` tag so compiled
        statements share the process-wide plan cache with in-memory
        plans without ever colliding.
        """
        key = (
            "sql",
            id(self.db),
            query_shape(query),
            form,
            (attr.alias, attr.attr) if attr is not None else None,
            (in_attr.alias, in_attr.attr) if in_attr is not None else None,
            self.distinct_reduction,
        )
        cached = self.plan_cache.lookup(key)
        if isinstance(cached, CompiledQuery):
            return cached
        check_connected(query, self.allow_cartesian)
        schemas = {v.table: self.db.table(v.table).schema for v in query.tuple_vars}
        if form == "execute":
            compiled = compile_execute(
                query, schemas, distinct_reduction=self.distinct_reduction
            )
        elif form == "count":
            assert attr is not None
            compiled = compile_count_distinct(
                query, schemas, attr, distinct_reduction=self.distinct_reduction
            )
        elif form == "values":
            assert attr is not None
            compiled = compile_distinct_values(
                query, schemas, attr, distinct_reduction=self.distinct_reduction
            )
        else:
            assert attr is not None and in_attr is not None
            compiled = compile_distinct_values_in(
                query,
                schemas,
                attr,
                in_attr,
                distinct_reduction=self.distinct_reduction,
            )
        self.plan_cache.store(key, compiled)
        return compiled


# ----------------------------------------------------------------------
# opening / building SQL-backed databases
# ----------------------------------------------------------------------
def shard_db_path(path: str | None, index: int) -> str | None:
    """The per-shard database file derived from a configured ``db_path``.

    ``audit.db`` becomes ``audit.shard0.db``, ``audit.shard1.db``, ... —
    each shard owns a private file (private connection, private WAL).  A
    ``None`` path stays ``None`` (private in-memory databases).
    """
    if path is None:
        return None
    root, ext = os.path.splitext(path)
    return f"{root}.shard{index}{ext or '.db'}"


def _register_name(driver: SqliteDriver, name: str) -> None:
    driver.execute(
        f"INSERT OR REPLACE INTO {quote_ident(SCHEMA_TABLE)} "
        "(name, schema_json) VALUES (?, ?)",
        (_NAME_KEY, json.dumps({"name": name})),
    )


def open_sql_database(
    source: Database | str | os.PathLike | None = None,
    path: str | None = None,
    *,
    name: str | None = None,
) -> SqlDatabase:
    """Open (or build) a SQL-backed database at ``path``.

    Resolution order:

    1. **Reuse** — when the file at ``path`` already holds a complete
       ``_repro_schema`` catalog, the typed catalog is rebuilt from it
       and ``source`` is ignored entirely.  This is the restart path: a
       reopened audit service never re-ingests.
    2. **Build** — otherwise ``source`` is ingested: a CSV directory
       (saved by :func:`~repro.db.csvio.save_database`) is *streamed*
       table by table without ever materializing an in-memory
       :class:`~repro.db.table.Table` (the beyond-RAM path), while an
       in-memory :class:`~repro.db.database.Database` is copied row by
       row.  Catalog rows are registered only after a table's rows are
       fully ingested, so a crash mid-build is detected as "no catalog"
       and the next open rebuilds from source.

    ``path=None`` opens a private in-memory SQLite database (tests, and
    shards without a configured ``db_path``).
    """
    driver = SqliteDriver(path)
    catalog = driver.load_schema_catalog()
    stored = catalog.pop(_NAME_KEY, None)
    if catalog:
        schemas = [_schema_from_json(blob) for blob in catalog.values()]
        if name is None:
            name = stored["name"] if stored else "db"
        return SqlDatabase(driver, name=name, schemas=schemas)
    if source is None:
        target = path if path is not None else ":memory:"
        raise SchemaError(
            f"no audited database found at {target!r} and no source to "
            "ingest was given"
        )
    if isinstance(source, (str, os.PathLike)):
        directory = str(source)
        source_name, schemas = read_manifest(directory)
        db = SqlDatabase(driver, name=name or source_name, schemas=schemas)
        for schema in schemas:
            driver.create_table(schema, reset=True)
        for schema in schemas:
            csv_path = os.path.join(directory, f"{schema.name}.csv")
            driver.ingest_many(
                schema, _encoded_rows(schema, iter_table_csv(schema, csv_path))
            )
            driver.register_schema(schema, _schema_to_json(schema))
    else:
        db = SqlDatabase(
            driver,
            name=name or source.name,
            schemas=[t.schema for t in source.tables()],
        )
        for table in source.tables():
            driver.create_table(table.schema, reset=True)
            driver.ingest_many(
                table.schema, _encoded_rows(table.schema, table.rows())
            )
            driver.register_schema(table.schema, _schema_to_json(table.schema))
    _register_name(driver, db.name)
    return db
