"""Schema objects: column types, columns, foreign keys, table schemas.

The catalog model is intentionally close to what the paper's mining
algorithms consume (Section 3.1): the set of *edges* usable in an
explanation path is derived from key/foreign-key relationships declared
here, plus administrator-specified relationships and permitted self-joins
(declared on :class:`repro.core.graph.SchemaGraph`).
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from .errors import SchemaError, UnknownColumnError


class ColumnType(enum.Enum):
    """Supported column value domains.

    The engine is dynamically typed at storage level (rows hold Python
    objects); the declared type drives CSV (de)serialization, validation,
    and optimizer statistics.
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"
    BOOL = "bool"

    def parse(self, text: str) -> Any:
        """Parse a CSV cell into a Python value of this type.

        Empty strings decode to ``None`` (SQL NULL).
        """
        if text == "":
            return None
        if self is ColumnType.INT:
            return int(text)
        if self is ColumnType.FLOAT:
            return float(text)
        if self is ColumnType.BOOL:
            return text.strip().lower() in ("1", "true", "t", "yes")
        if self is ColumnType.DATE:
            return _dt.datetime.fromisoformat(text)
        return text

    def render(self, value: Any) -> str:
        """Serialize a Python value of this type into a CSV cell."""
        if value is None:
            return ""
        if self is ColumnType.DATE:
            return value.isoformat()
        if self is ColumnType.BOOL:
            return "true" if value else "false"
        return str(value)

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is acceptable for this column type."""
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.STR:
            return isinstance(value, str)
        if self is ColumnType.DATE:
            return isinstance(value, _dt.datetime)
        if self is ColumnType.BOOL:
            return isinstance(value, bool)
        return False  # pragma: no cover - enum is exhaustive


@dataclass(frozen=True)
class Column:
    """A single named, typed column."""

    name: str
    ctype: ColumnType = ColumnType.STR
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A declared key/foreign-key relationship.

    ``column`` in the owning table references ``ref_table.ref_column``.
    These relationships are the primary source of join edges for
    explanation-template mining (paper Section 3.1, assumption 2).
    """

    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return f"{self.column} -> {self.ref_table}.{self.ref_column}"


@dataclass(frozen=True)
class TableSchema:
    """An immutable table definition.

    Parameters
    ----------
    name:
        Table name; must be a valid identifier.
    columns:
        Ordered column definitions; names must be unique.
    primary_key:
        Names of the primary-key columns (possibly empty for logs that
        use a surrogate id column declared like any other column).
    foreign_keys:
        Declared references into other tables.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name: {self.name!r}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}: {names}")
        object.__setattr__(self, "_index", {n: i for i, n in enumerate(names)})
        for pk in self.primary_key:
            if pk not in self._index:
                raise SchemaError(f"primary key column {pk!r} not in table {self.name!r}")
        for fk in self.foreign_keys:
            if fk.column not in self._index:
                raise SchemaError(f"foreign key column {fk.column!r} not in table {self.name!r}")

    @staticmethod
    def build(
        name: str,
        columns: Sequence[Column | tuple[str, ColumnType] | str],
        primary_key: Iterable[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> "TableSchema":
        """Convenience constructor accepting lightweight column specs.

        ``columns`` items may be :class:`Column` instances, ``(name, type)``
        pairs, or bare names (typed STR).
        """
        cols: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                cols.append(spec)
            elif isinstance(spec, tuple):
                cols.append(Column(spec[0], spec[1]))
            else:
                cols.append(Column(spec))
        return TableSchema(
            name=name,
            columns=tuple(cols),
            primary_key=tuple(primary_key),
            foreign_keys=tuple(foreign_keys),
        )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column of this name exists."""
        return name in self._index

    def column_index(self, name: str) -> int:
        """Position of ``name`` in a stored row tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column(self, name: str) -> Column:
        """Look up a column definition by name."""
        return self.columns[self.column_index(name)]

    def arity(self) -> int:
        """Number of columns (stored row width)."""
        return len(self.columns)

    def __str__(self) -> str:
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"{self.name}({cols})"
