"""Hash-join execution of conjunctive (explanation-template) queries.

The paper evaluates every candidate path with a support query

.. code-block:: sql

    SELECT COUNT(DISTINCT Log.Lid) FROM Log, T_1, ..., T_n WHERE C

on PostgreSQL.  This executor plays PostgreSQL's role.  It implements a
left-deep pipeline of hash joins with three properties that matter for
mining and streaming performance:

1. **Distinct projections per tuple variable** — each table is reduced to
   the deduplicated projection of only the attributes the query touches
   before joining (the paper's *Reducing Result Multiplicity* rewrite,
   Section 3.2.1).
2. **Eager column pruning** — after each join, attributes that no pending
   condition or projection needs are dropped and the intermediate is
   deduplicated again, so intermediates stay bounded by the number of
   distinct value combinations rather than raw row counts.
3. **Point-predicate pushdown + index-nested-loop joins** — single-variable
   literal equalities (the ``L.Lid = ?`` restriction of per-access
   explanation queries) are pushed down to :meth:`Table.lookup` hash-index
   probes before the pipeline starts, and when the probe side of a join is
   tiny the executor probes the table's delta-maintained
   :meth:`Table.projection_index` instead of hashing the whole build side.
   Together these make a streamed access's explanation query touch
   O(matching rows) of the log, not O(log).
4. **Set-at-a-time (batch semijoin) evaluation** — :meth:`Executor.
   distinct_values_in` evaluates a query once against a whole *set* of
   binding values (``alias.attr IN {…}``, resolved through the table's
   batch probe APIs) instead of issuing one point query per value.  This
   is the primitive behind ``ExplanationEngine.explain_batch``: one
   semijoin per template replaces O(batch) point queries.
5. **A memoized plan cache** — planning (needed-attribute projection,
   pushdown split, greedy join order) is delegated to
   :func:`repro.db.optimizer.build_plan` and memoized in a shared
   :class:`repro.db.optimizer.PlanCache` keyed on *query shape*, so
   repeated template evaluation (streamed point queries, batch semijoins,
   mining support queries) never re-plans.

Correctness of every pipeline configuration (with/without distinct
reduction, with/without pushdown; point and batch paths) is pinned to a
brute-force reference evaluator by ``tests/test_differential_executor.py``.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Sequence
from typing import Any

from .database import Database
from .errors import QueryError
from .optimizer import PlanCache, QueryPlan, build_plan, query_shape, shared_plan_cache
from .query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    cond_attr_refs,
)
from .table import Table

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, left: Any, right: Any) -> bool:
    """SQL-style comparison: any comparison involving NULL is false."""
    if left is None or right is None:
        return False
    return _OPS[op](left, right)


#: Probe-side-to-build-side size ratio below which a join switches from
#: build-a-hashmap to probing the table's cached projection index.
INDEX_JOIN_RATIO = 4

#: Shared miss default for vectorized hashmap probes.
_EMPTY: tuple = ()


def _tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """A fast ``row -> (row[p] for p in positions)`` projector.

    ``operator.itemgetter`` runs the extraction in C but returns a bare
    scalar for a single position; wrap that case so callers always get
    tuples.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    return operator.itemgetter(*positions)


class _BaseRelation:
    """One tuple variable's input to the join pipeline, materialized lazily.

    When the variable carries point predicates, or a batch-semijoin
    ``IN``-restriction, they are resolved eagerly through the table's
    (batch) index probes — small result.  Otherwise only the *size* is
    computed up front (for join ordering) and rows are materialized on
    demand — a join that takes the index-nested-loop path never
    materializes the build side at all.
    """

    __slots__ = (
        "table", "attrs", "cols", "reduce", "pristine", "vectorized", "_rows", "size"
    )

    def __init__(
        self,
        table: Table,
        alias: str,
        attrs: list[str],
        point_conds: list[Condition] | None,
        reduce_rows: bool,
        in_restrict: tuple[str, set] | None = None,
        vectorized: bool = False,
    ) -> None:
        self.table = table
        self.attrs = attrs
        self.cols = [AttrRef(alias, a) for a in attrs]
        self.reduce = reduce_rows
        self.vectorized = vectorized
        #: True when rows are exactly the table's (distinct) projection —
        #: the precondition for probing the table's projection index.
        self.pristine = not point_conds and in_restrict is None
        self._rows: list[tuple] | None = None
        if point_conds:
            first, rest = point_conds[0], point_conds[1:]
            source = table.lookup(first.left.attr, first.right.value)
            if rest:
                rest_idx = [
                    (table.schema.column_index(c.left.attr), c) for c in rest
                ]
                source = [
                    r
                    for r in source
                    if all(_compare(c.op, r[i], c.right.value) for i, c in rest_idx)
                ]
            idxs = [table.schema.column_index(a) for a in attrs]
            if vectorized:
                rows = list(map(_tuple_getter(idxs), source))
            else:
                rows = [tuple(r[i] for i in idxs) for r in source]
            if reduce_rows:
                rows = list(dict.fromkeys(rows))
            if in_restrict is not None:
                pos = attrs.index(in_restrict[0])
                rows = [r for r in rows if r[pos] in in_restrict[1]]
            self._rows = rows
            self.size = len(rows)
        elif in_restrict is not None:
            self._rows = self._restricted_rows(in_restrict)
            self.size = len(self._rows)
        elif reduce_rows:
            self.size = len(table.project_distinct(attrs))
        else:
            self.size = len(table)

    def _restricted_rows(self, in_restrict: tuple[str, set]) -> list[tuple]:
        """Materialize ``attr IN values`` through the batch probe APIs.

        Small binding sets probe the delta-maintained (projection) index
        once per value; large ones scan and filter — the same adaptive
        switch as the index-nested-loop join.  ``values`` never contains
        NULL (stripped by the caller: NULL never joins).  The vectorized
        variant probes by set intersection (scalar-keyed projection index,
        no per-value tuple allocation) and scans through the columnar
        mirror — the typed ``array('q')`` one for clean int columns.
        """
        attr, values = in_restrict
        table, attrs = self.table, self.attrs
        if self.vectorized:
            return self._restricted_rows_vectorized(attr, values)
        if self.reduce:
            if len(values) * INDEX_JOIN_RATIO < max(1, len(table)):
                probed = table.projection_probe_many(
                    attrs, (attr,), [(v,) for v in values], vectorized=False
                )
                return [t for entries in probed.values() for t in entries]
            pos = attrs.index(attr)
            return [t for t in table.project_distinct(attrs) if t[pos] in values]
        idxs = [table.schema.column_index(a) for a in attrs]
        if len(values) * INDEX_JOIN_RATIO < max(1, len(table)):
            return [
                tuple(r[i] for i in idxs)
                for r in table.lookup_many(attr, values, vectorized=False)
            ]
        col = table.schema.column_index(attr)
        return [
            tuple(r[i] for i in idxs) for r in table.rows() if r[col] in values
        ]

    def _restricted_rows_vectorized(self, attr: str, values: set) -> list[tuple]:
        table, attrs = self.table, self.attrs
        small = len(values) * INDEX_JOIN_RATIO < max(1, len(table))
        if self.reduce:
            if small:
                probed = table.projection_probe_scalar(attrs, attr, values)
                return [t for entries in probed.values() for t in entries]
            pos = attrs.index(attr)
            return [t for t in table.project_distinct(attrs) if t[pos] in values]
        idxs = [table.schema.column_index(a) for a in attrs]
        getter = _tuple_getter(idxs)
        if small:
            return list(map(getter, table.lookup_many(attr, values)))
        col_vals = table.int_column_array(attr)
        if col_vals is None:
            col_vals = table.column_array(attr)
        rows = table.rows()
        return [getter(rows[i]) for i, v in enumerate(col_vals) if v in values]

    def rows(self) -> list[tuple]:
        if self._rows is None:
            if self.reduce:
                self._rows = list(self.table.project_distinct(self.attrs))
            elif self.vectorized:
                idxs = [self.table.schema.column_index(a) for a in self.attrs]
                source = self.table.rows()
                if idxs == list(range(self.table.schema.arity())):
                    self._rows = source  # identity projection: reuse storage
                else:
                    self._rows = list(map(_tuple_getter(idxs), source))
            else:
                idxs = [self.table.schema.column_index(a) for a in self.attrs]
                self._rows = [tuple(r[i] for i in idxs) for r in self.table.rows()]
        return self._rows


class QueryResult:
    """Materialized query output: ``columns`` (AttrRefs) and ``rows``."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: tuple[AttrRef, ...], rows: list[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_position(self, ref: AttrRef) -> int:
        """Index of ``ref`` within this result's column tuple."""
        return self.columns.index(ref)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{"alias.attr": value}`` dictionaries (for display)."""
        names = [str(c) for c in self.columns]
        return [dict(zip(names, row)) for row in self.rows]


class Executor:
    """Evaluates :class:`ConjunctiveQuery` objects against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        allow_cartesian: bool = False,
        distinct_reduction: bool = True,
        predicate_pushdown: bool = True,
        plan_cache: PlanCache | None = None,
        vectorized: bool = True,
    ) -> None:
        self.db = db
        self.allow_cartesian = allow_cartesian
        #: When True (the default), the join pipeline runs its batch
        #: (columnar) hot paths: set-intersection index probes, scalar-keyed
        #: hashmaps for single-attribute joins, C-level ``itemgetter``
        #: projections, and per-condition specialized filters.  False keeps
        #: the original per-row loops — the differential reference
        #: (``tests/test_executor_vectorized.py`` pins both paths equal).
        self.vectorized = vectorized
        #: When False, base tables are fed to the join pipeline at full
        #: multiplicity and intermediates are never deduplicated — the
        #: paper's *unoptimized* query shape, kept for the ablation bench.
        #: Final DISTINCT semantics are unaffected.
        self.distinct_reduction = distinct_reduction
        #: When True, single-variable literal equalities are resolved via
        #: hash-index probes before the join pipeline (and tiny probe sides
        #: use index-nested-loop joins).  False restores the seed's
        #: scan-everything pipeline — the streaming bench's baseline.
        self.predicate_pushdown = predicate_pushdown
        #: Memoized query plans, shared process-wide by default so every
        #: executor over the same template shapes reuses one plan; pass a
        #: private PlanCache to isolate (tests, benchmarks).
        self.plan_cache = plan_cache if plan_cache is not None else shared_plan_cache()
        #: Number of queries executed (exposed for the mining and streaming
        #: benchmarks, and by the streaming regression tests to assert the
        #: delta path issues O(templates × accesses) point queries).  A
        #: batch semijoin counts as ONE query regardless of batch size.
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveQuery) -> QueryResult:
        """Run ``query`` and return its (optionally distinct) projection."""
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query)
        pos = [rel_cols.index(ref) for ref in query.projection]
        if self.vectorized:
            out = list(map(_tuple_getter(pos), rel_rows))
        else:
            out = [tuple(row[p] for p in pos) for row in rel_rows]
        if query.distinct:
            out = list(dict.fromkeys(out))
        return QueryResult(tuple(query.projection), out)

    def count_distinct(self, query: ConjunctiveQuery, attr: AttrRef | None = None) -> int:
        """``SELECT COUNT(DISTINCT attr) ...`` — the paper's support query.

        When ``attr`` is None the first projected attribute is counted.
        """
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query, needed_extra=(target,))
        pos = rel_cols.index(target)
        return len({row[pos] for row in rel_rows})

    def distinct_values(self, query: ConjunctiveQuery, attr: AttrRef | None = None) -> set:
        """The distinct value set of one attribute over the query result.

        Used by the evaluation harness, which needs the *set* of explained
        log ids (for recall/precision), not just its size.
        """
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query, needed_extra=(target,))
        pos = rel_cols.index(target)
        return {row[pos] for row in rel_rows}

    def distinct_values_in(
        self,
        query: ConjunctiveQuery,
        attr: AttrRef,
        in_attr: AttrRef,
        in_values: Sequence[Any],
    ) -> set:
        """Batch semijoin: distinct ``attr`` values of the query result with
        ``in_attr`` restricted to ``in_values``.

        Semantically identical to adding ``in_attr IN in_values`` to the
        WHERE clause — i.e. to unioning one point query per value — but
        evaluated as ONE pipeline run: the restricted tuple variable is
        materialized through the table's batch probe APIs and drives the
        join order.  NULLs in ``in_values`` never match (SQL semantics),
        and rows whose ``in_attr`` is NULL are never selected.  This is
        the executor-level primitive behind ``explain_batch``: one
        semijoin per template replaces O(batch) per-access point queries.
        """
        self.queries_executed += 1
        self._validate(query)
        values = {v for v in in_values if v is not None}
        if not values:
            return set()
        rel_cols, rel_rows = self._join_all(
            query, needed_extra=(attr, in_attr), in_restrict=(in_attr, values)
        )
        pos = rel_cols.index(attr)
        return {row[pos] for row in rel_rows}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, query: ConjunctiveQuery) -> None:
        for var in query.tuple_vars:
            table = self.db.table(var.table)  # raises UnknownTableError
            schema = table.schema
            for cond in query.conditions:
                for ref in cond_attr_refs(cond):
                    if ref.alias == var.alias and not schema.has_column(ref.attr):
                        raise QueryError(f"no column {ref.attr!r} in {var.table!r}")
            for ref in query.projection:
                if ref.alias == var.alias and not schema.has_column(ref.attr):
                    raise QueryError(f"no column {ref.attr!r} in {var.table!r}")

    def _plan_for(
        self,
        query: ConjunctiveQuery,
        needed_extra: Sequence[AttrRef],
        in_restrict: tuple[AttrRef, set] | None,
    ) -> QueryPlan:
        """The memoized plan for this query shape under this configuration.

        The key carries the database's identity: plans are shared across
        every executor over the *same* Database (engine, support
        evaluator, monitor), but a shape first planned against another
        database's table sizes is never reused — its join order would
        reflect the wrong cardinalities.
        """
        key = (
            id(self.db),
            query_shape(query),
            tuple((r.alias, r.attr) for r in needed_extra),
            (in_restrict[0].alias, in_restrict[0].attr) if in_restrict else None,
            self.distinct_reduction,
            self.predicate_pushdown,
            self.allow_cartesian,
        )
        plan = self.plan_cache.lookup(key)
        if plan is None:
            plan = build_plan(
                self.db,
                query,
                tuple(needed_extra),
                distinct_reduction=self.distinct_reduction,
                predicate_pushdown=self.predicate_pushdown,
                allow_cartesian=self.allow_cartesian,
                in_alias=in_restrict[0].alias if in_restrict else None,
            )
            self.plan_cache.store(key, plan)
        return plan

    def _prepare(
        self,
        query: ConjunctiveQuery,
        needed_extra: Sequence[AttrRef],
        in_restrict: tuple[AttrRef, set] | None,
    ):
        """Plan lookup + base-relation construction, shared by both the
        row-wise and vectorized pipelines.

        Base relations are projections of the needed attributes — distinct
        when multiplicity reduction is enabled (paper Section 3.2.1).
        Point predicates (consumed by the plan's pushdown split) and the
        batch semijoin restriction resolve through index probes here.
        """
        plan = self._plan_for(query, needed_extra, in_restrict)
        conditions = query.conditions
        keep_always = {ref for ref in query.projection} | set(needed_extra)
        reduce_rows = self.distinct_reduction and query.distinct
        in_alias = in_restrict[0].alias if in_restrict else None
        base: dict[str, _BaseRelation] = {}
        for var in query.tuple_vars:
            table = self.db.table(var.table)
            attrs = list(plan.needed[var.alias]) or [table.schema.column_names[0]]
            point_conds = [
                conditions[i] for i in plan.pushable_idx.get(var.alias, ())
            ]
            restrict = None
            if var.alias == in_alias:
                restrict = (in_restrict[0].attr, in_restrict[1])
            base[var.alias] = _BaseRelation(
                table,
                var.alias,
                attrs,
                point_conds or None,
                reduce_rows,
                restrict,
                vectorized=self.vectorized,
            )
        pending = [conditions[i] for i in plan.residual_idx]
        return plan, conditions, keep_always, reduce_rows, base, pending

    def _join_all(
        self,
        query: ConjunctiveQuery,
        needed_extra: Sequence[AttrRef] = (),
        in_restrict: tuple[AttrRef, set] | None = None,
    ) -> tuple[list[AttrRef], list[tuple]]:
        """Join every tuple variable along the cached plan; returns
        (columns, rows)."""
        if self.vectorized:
            return self._join_all_vectorized(query, needed_extra, in_restrict)
        return self._join_all_rowwise(query, needed_extra, in_restrict)

    def _join_all_rowwise(
        self,
        query: ConjunctiveQuery,
        needed_extra: Sequence[AttrRef] = (),
        in_restrict: tuple[AttrRef, set] | None = None,
    ) -> tuple[list[AttrRef], list[tuple]]:
        """The original per-row pipeline — the differential reference for
        the vectorized path (``Executor(vectorized=False)`` routes here)."""
        plan, conditions, keep_always, reduce_rows, base, pending = self._prepare(
            query, needed_extra, in_restrict
        )

        def applicable(cols: list[AttrRef]) -> list[Condition]:
            """Pending conditions whose every attr ref is now bound."""
            have = set(cols)
            out = []
            for cond in pending:
                if all(ref in have for ref in cond_attr_refs(cond)):
                    out.append(cond)
            return out

        def apply_filters(cols: list[AttrRef], rows: list[tuple]) -> list[tuple]:
            conds = applicable(cols)
            if not conds:
                return rows
            idx = {ref: cols.index(ref) for cond in conds for ref in cond_attr_refs(cond)}
            kept = []
            for row in rows:
                ok = True
                for cond in conds:
                    lval = row[idx[cond.left]]
                    rval = (
                        row[idx[cond.right]]
                        if isinstance(cond.right, AttrRef)
                        else cond.right.value
                    )
                    if not _compare(cond.op, lval, rval):
                        ok = False
                        break
                if ok:
                    kept.append(row)
            for cond in conds:
                pending.remove(cond)
            return kept

        def prune(cols: list[AttrRef], rows: list[tuple]) -> tuple[list[AttrRef], list[tuple]]:
            """Drop columns no pending condition / projection needs; dedup."""
            still_needed = set(keep_always)
            for cond in pending:
                still_needed.update(cond_attr_refs(cond))
            keep_pos = [i for i, c in enumerate(cols) if c in still_needed]
            if len(keep_pos) == len(cols):
                return cols, rows
            new_cols = [cols[i] for i in keep_pos]
            projected = (tuple(r[i] for i in keep_pos) for r in rows)
            if reduce_rows:
                new_rows = list(dict.fromkeys(projected))
            else:
                new_rows = list(projected)
            return new_cols, new_rows

        # Walk the plan's join order (first step drives the pipeline: the
        # planner ranks point-predicate and semijoin-restricted relations
        # first, so a ``L.Lid = ?`` restriction or a batch binding set
        # naturally drives the whole pipeline).
        start = plan.steps[0]
        cols = list(base[start.alias].cols)
        rows = base[start.alias].rows()
        rows = apply_filters(cols, rows)
        cols, rows = prune(cols, rows)

        for step in plan.steps[1:]:
            join_conds = [conditions[i] for i in step.join_cond_idx]
            vbase = base[step.alias]
            vcols = vbase.cols
            if join_conds:
                # split each join condition into (bound side, new side)
                probe_refs: list[AttrRef] = []
                build_refs: list[AttrRef] = []
                for cond in join_conds:
                    if cond.left.alias == step.alias:
                        build_refs.append(cond.left)
                        probe_refs.append(cond.right)  # type: ignore[arg-type]
                    else:
                        build_refs.append(cond.right)  # type: ignore[arg-type]
                        probe_refs.append(cond.left)
                    pending.remove(cond)
                probe_pos = [cols.index(r) for r in probe_refs]
                joined: list[tuple] = []
                if vbase.pristine and vbase.reduce:
                    # Probe the table's delta-maintained projection index
                    # instead of hashing the build side.  The index IS the
                    # hash map this join would build — but cached across
                    # calls and maintained on append, so a repeated
                    # template shape (every batch semijoin of a sliced
                    # scan, every point explain) skips the per-call
                    # O(|table|) build entirely.
                    hashmap = vbase.table.projection_index(
                        vbase.attrs, [r.attr for r in build_refs]
                    )
                else:
                    build_pos = [vcols.index(r) for r in build_refs]
                    hashmap = {}
                    for vrow in vbase.rows():
                        key = tuple(vrow[p] for p in build_pos)
                        if None in key:
                            continue  # NULL never joins
                        hashmap.setdefault(key, []).append(vrow)
                for row in rows:
                    key = tuple(row[p] for p in probe_pos)
                    if None in key:
                        continue
                    for vrow in hashmap.get(key, ()):
                        joined.append(row + vrow)
            else:  # explicit cartesian product (opt-in only)
                joined = [row + vrow for row in rows for vrow in vbase.rows()]

            cols = cols + list(vcols)
            joined = apply_filters(cols, joined)
            cols, rows = prune(cols, joined)

        if pending:  # only single-var conditions could remain; apply them
            rows = apply_filters(cols, rows)
        if pending:
            raise QueryError(f"unapplied conditions remain: {pending}")
        return cols, rows

    def _join_all_vectorized(
        self,
        query: ConjunctiveQuery,
        needed_extra: Sequence[AttrRef] = (),
        in_restrict: tuple[AttrRef, set] | None = None,
    ) -> tuple[list[AttrRef], list[tuple]]:
        """The batch pipeline: same joins, same semantics, C-level loops.

        Differences from :meth:`_join_all_rowwise`, none observable in the
        result multiset (pinned by ``tests/test_executor_vectorized.py``):

        * probe keys come from one ``itemgetter`` per step (or a bare
          column read for single-attribute joins, probing a scalar-keyed
          hashmap — no per-row key-tuple allocation);
        * NULL probe keys need no explicit skip — neither the projection
          indexes nor the hashmaps built here ever contain a NULL-bearing
          key, so a NULL probe simply misses;
        * filters run as one specialized comprehension per condition
          (SQL three-valued semantics compiled into the ``is not None``
          guards) instead of an interpreted per-row condition loop;
        * prune/projection dedup feed ``dict.fromkeys`` through
          ``map(itemgetter)``.
        """
        plan, conditions, keep_always, reduce_rows, base, pending = self._prepare(
            query, needed_extra, in_restrict
        )

        def applicable(cols: list[AttrRef]) -> list[Condition]:
            """Pending conditions whose every attr ref is now bound."""
            have = set(cols)
            out = []
            for cond in pending:
                if all(ref in have for ref in cond_attr_refs(cond)):
                    out.append(cond)
            return out

        def apply_filters(cols: list[AttrRef], rows: list[tuple]) -> list[tuple]:
            conds = applicable(cols)
            if not conds:
                return rows
            pos = {c: i for i, c in enumerate(cols)}
            for cond in conds:
                pending.remove(cond)
                if not rows:
                    continue
                op, li = cond.op, pos[cond.left]
                if isinstance(cond.right, AttrRef):
                    ri = pos[cond.right]
                    if op == "=":
                        # x == None is False for every concrete x here, so
                        # one guard covers both NULL sides.
                        rows = [r for r in rows if r[li] is not None and r[li] == r[ri]]
                    else:
                        cmp = _OPS[op]
                        rows = [
                            r
                            for r in rows
                            if r[li] is not None
                            and r[ri] is not None
                            and cmp(r[li], r[ri])
                        ]
                else:
                    rv = cond.right.value
                    if rv is None:
                        rows = []  # comparison with NULL is never true
                    elif op == "=":
                        rows = [r for r in rows if r[li] == rv]
                    else:
                        cmp = _OPS[op]
                        rows = [
                            r for r in rows if r[li] is not None and cmp(r[li], rv)
                        ]
            return rows

        def prune(cols: list[AttrRef], rows: list[tuple]) -> tuple[list[AttrRef], list[tuple]]:
            """Drop columns no pending condition / projection needs; dedup."""
            still_needed = set(keep_always)
            for cond in pending:
                still_needed.update(cond_attr_refs(cond))
            keep_pos = [i for i, c in enumerate(cols) if c in still_needed]
            if len(keep_pos) == len(cols):
                return cols, rows
            new_cols = [cols[i] for i in keep_pos]
            projected = map(_tuple_getter(keep_pos), rows)
            if reduce_rows:
                new_rows = list(dict.fromkeys(projected))
            else:
                new_rows = list(projected)
            return new_cols, new_rows

        start = plan.steps[0]
        cols = list(base[start.alias].cols)
        rows = base[start.alias].rows()
        rows = apply_filters(cols, rows)
        cols, rows = prune(cols, rows)

        for step in plan.steps[1:]:
            join_conds = [conditions[i] for i in step.join_cond_idx]
            vbase = base[step.alias]
            vcols = vbase.cols
            if join_conds:
                probe_refs: list[AttrRef] = []
                build_refs: list[AttrRef] = []
                for cond in join_conds:
                    if cond.left.alias == step.alias:
                        build_refs.append(cond.left)
                        probe_refs.append(cond.right)  # type: ignore[arg-type]
                    else:
                        build_refs.append(cond.right)  # type: ignore[arg-type]
                        probe_refs.append(cond.left)
                    pending.remove(cond)
                single = len(probe_refs) == 1
                if vbase.pristine and vbase.reduce:
                    # Probe the table's delta-maintained projection index —
                    # the cached hash map this join would otherwise build
                    # per call (scalar-keyed for single-attribute joins).
                    if single:
                        hashmap: dict = vbase.table.projection_index_scalar(
                            vbase.attrs, build_refs[0].attr
                        )
                    else:
                        hashmap = vbase.table.projection_index(
                            vbase.attrs, [r.attr for r in build_refs]
                        )
                elif single:
                    b0 = vcols.index(build_refs[0])
                    hashmap = {}
                    for vrow in vbase.rows():
                        k = vrow[b0]
                        if k is None:
                            continue  # NULL never joins
                        hashmap.setdefault(k, []).append(vrow)
                else:
                    bget = operator.itemgetter(
                        *[vcols.index(r) for r in build_refs]
                    )
                    hashmap = {}
                    for vrow in vbase.rows():
                        key = bget(vrow)
                        if None in key:
                            continue  # NULL never joins
                        hashmap.setdefault(key, []).append(vrow)
                get = hashmap.get
                if single:
                    p0 = cols.index(probe_refs[0])
                    joined = [
                        row + vrow for row in rows for vrow in get(row[p0], _EMPTY)
                    ]
                else:
                    pget = operator.itemgetter(
                        *[cols.index(r) for r in probe_refs]
                    )
                    joined = [
                        row + vrow for row in rows for vrow in get(pget(row), _EMPTY)
                    ]
            else:  # explicit cartesian product (opt-in only)
                joined = [row + vrow for row in rows for vrow in vbase.rows()]

            cols = cols + list(vcols)
            joined = apply_filters(cols, joined)
            cols, rows = prune(cols, joined)

        if pending:  # only single-var conditions could remain; apply them
            rows = apply_filters(cols, rows)
        if pending:
            raise QueryError(f"unapplied conditions remain: {pending}")
        return cols, rows


def explain_query(db: Database, query: ConjunctiveQuery) -> str:
    """A human-readable one-line plan summary (for debugging and docs)."""
    sizes = ", ".join(
        f"{v.alias}:{len(db.table(v.table))}" for v in query.tuple_vars
    )
    return (
        f"hash-join pipeline over {len(query.tuple_vars)} vars "
        f"({sizes}); {len(query.join_conditions())} joins, "
        f"{len(query.filter_conditions())} filters"
    )
