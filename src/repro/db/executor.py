"""Hash-join execution of conjunctive (explanation-template) queries.

The paper evaluates every candidate path with a support query

.. code-block:: sql

    SELECT COUNT(DISTINCT Log.Lid) FROM Log, T_1, ..., T_n WHERE C

on PostgreSQL.  This executor plays PostgreSQL's role.  It implements a
left-deep pipeline of hash joins with three properties that matter for
mining and streaming performance:

1. **Distinct projections per tuple variable** — each table is reduced to
   the deduplicated projection of only the attributes the query touches
   before joining (the paper's *Reducing Result Multiplicity* rewrite,
   Section 3.2.1).
2. **Eager column pruning** — after each join, attributes that no pending
   condition or projection needs are dropped and the intermediate is
   deduplicated again, so intermediates stay bounded by the number of
   distinct value combinations rather than raw row counts.
3. **Point-predicate pushdown + index-nested-loop joins** — single-variable
   literal equalities (the ``L.Lid = ?`` restriction of per-access
   explanation queries) are pushed down to :meth:`Table.lookup` hash-index
   probes before the pipeline starts, and when the probe side of a join is
   tiny the executor probes the table's delta-maintained
   :meth:`Table.projection_index` instead of hashing the whole build side.
   Together these make a streamed access's explanation query touch
   O(matching rows) of the log, not O(log).

The join order walks the query's join graph greedily from the smallest
(post-pushdown) relation, which for chain-shaped explanation queries
reproduces the natural left-to-right order.  Correctness of every
pipeline configuration (with/without distinct reduction, with/without
pushdown) is pinned to a brute-force reference evaluator by
``tests/test_differential_executor.py``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from .database import Database
from .errors import QueryError
from .optimizer import extract_point_predicates
from .query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Literal,
    TupleVar,
    cond_attr_refs,
)
from .table import Table

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, left: Any, right: Any) -> bool:
    """SQL-style comparison: any comparison involving NULL is false."""
    if left is None or right is None:
        return False
    return _OPS[op](left, right)


#: Probe-side-to-build-side size ratio below which a join switches from
#: build-a-hashmap to probing the table's cached projection index.
INDEX_JOIN_RATIO = 4


class _BaseRelation:
    """One tuple variable's input to the join pipeline, materialized lazily.

    When the variable carries point predicates they are resolved eagerly
    through the table's hash index (small result).  Otherwise only the
    *size* is computed up front (for join ordering) and rows are
    materialized on demand — a join that takes the index-nested-loop path
    never materializes the build side at all.
    """

    __slots__ = ("table", "attrs", "cols", "reduce", "pristine", "_rows", "size")

    def __init__(
        self,
        table: Table,
        alias: str,
        attrs: list[str],
        point_conds: list[Condition] | None,
        reduce_rows: bool,
    ) -> None:
        self.table = table
        self.attrs = attrs
        self.cols = [AttrRef(alias, a) for a in attrs]
        self.reduce = reduce_rows
        #: True when rows are exactly the table's (distinct) projection —
        #: the precondition for probing the table's projection index.
        self.pristine = not point_conds
        self._rows: list[tuple] | None = None
        if point_conds:
            first, rest = point_conds[0], point_conds[1:]
            source = table.lookup(first.left.attr, first.right.value)
            if rest:
                rest_idx = [
                    (table.schema.column_index(c.left.attr), c) for c in rest
                ]
                source = [
                    r
                    for r in source
                    if all(_compare(c.op, r[i], c.right.value) for i, c in rest_idx)
                ]
            idxs = [table.schema.column_index(a) for a in attrs]
            rows = [tuple(r[i] for i in idxs) for r in source]
            if reduce_rows:
                rows = list(dict.fromkeys(rows))
            self._rows = rows
            self.size = len(rows)
        elif reduce_rows:
            self.size = len(table.project_distinct(attrs))
        else:
            self.size = len(table)

    def rows(self) -> list[tuple]:
        if self._rows is None:
            if self.reduce:
                self._rows = list(self.table.project_distinct(self.attrs))
            else:
                idxs = [self.table.schema.column_index(a) for a in self.attrs]
                self._rows = [tuple(r[i] for i in idxs) for r in self.table.rows()]
        return self._rows


class QueryResult:
    """Materialized query output: ``columns`` (AttrRefs) and ``rows``."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: tuple[AttrRef, ...], rows: list[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_position(self, ref: AttrRef) -> int:
        """Index of ``ref`` within this result's column tuple."""
        return self.columns.index(ref)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{"alias.attr": value}`` dictionaries (for display)."""
        names = [str(c) for c in self.columns]
        return [dict(zip(names, row)) for row in self.rows]


class Executor:
    """Evaluates :class:`ConjunctiveQuery` objects against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        allow_cartesian: bool = False,
        distinct_reduction: bool = True,
        predicate_pushdown: bool = True,
    ) -> None:
        self.db = db
        self.allow_cartesian = allow_cartesian
        #: When False, base tables are fed to the join pipeline at full
        #: multiplicity and intermediates are never deduplicated — the
        #: paper's *unoptimized* query shape, kept for the ablation bench.
        #: Final DISTINCT semantics are unaffected.
        self.distinct_reduction = distinct_reduction
        #: When True, single-variable literal equalities are resolved via
        #: hash-index probes before the join pipeline (and tiny probe sides
        #: use index-nested-loop joins).  False restores the seed's
        #: scan-everything pipeline — the streaming bench's baseline.
        self.predicate_pushdown = predicate_pushdown
        #: Number of queries executed (exposed for the mining and streaming
        #: benchmarks, and by the streaming regression tests to assert the
        #: delta path issues O(templates × accesses) point queries).
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveQuery) -> QueryResult:
        """Run ``query`` and return its (optionally distinct) projection."""
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query)
        pos = [rel_cols.index(ref) for ref in query.projection]
        out = [tuple(row[p] for p in pos) for row in rel_rows]
        if query.distinct:
            out = list(dict.fromkeys(out))
        return QueryResult(tuple(query.projection), out)

    def count_distinct(self, query: ConjunctiveQuery, attr: AttrRef | None = None) -> int:
        """``SELECT COUNT(DISTINCT attr) ...`` — the paper's support query.

        When ``attr`` is None the first projected attribute is counted.
        """
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query, needed_extra=(target,))
        pos = rel_cols.index(target)
        return len({row[pos] for row in rel_rows})

    def distinct_values(self, query: ConjunctiveQuery, attr: AttrRef | None = None) -> set:
        """The distinct value set of one attribute over the query result.

        Used by the evaluation harness, which needs the *set* of explained
        log ids (for recall/precision), not just its size.
        """
        target = attr if attr is not None else query.projection[0]
        self.queries_executed += 1
        self._validate(query)
        rel_cols, rel_rows = self._join_all(query, needed_extra=(target,))
        pos = rel_cols.index(target)
        return {row[pos] for row in rel_rows}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, query: ConjunctiveQuery) -> None:
        for var in query.tuple_vars:
            table = self.db.table(var.table)  # raises UnknownTableError
            schema = table.schema
            for cond in query.conditions:
                for ref in cond_attr_refs(cond):
                    if ref.alias == var.alias and not schema.has_column(ref.attr):
                        raise QueryError(f"no column {ref.attr!r} in {var.table!r}")
            for ref in query.projection:
                if ref.alias == var.alias and not schema.has_column(ref.attr):
                    raise QueryError(f"no column {ref.attr!r} in {var.table!r}")

    def _needed_attrs(
        self, query: ConjunctiveQuery, extra: Sequence[AttrRef]
    ) -> dict[str, list[str]]:
        """attrs each alias must expose (conditions + projection + extras)."""
        needed: dict[str, set[str]] = {v.alias: set() for v in query.tuple_vars}
        for cond in query.conditions:
            for ref in cond_attr_refs(cond):
                needed[ref.alias].add(ref.attr)
        for ref in list(query.projection) + list(extra):
            needed[ref.alias].add(ref.attr)
        return {alias: sorted(attrs) for alias, attrs in needed.items()}

    def _join_all(
        self, query: ConjunctiveQuery, needed_extra: Sequence[AttrRef] = ()
    ) -> tuple[list[AttrRef], list[tuple]]:
        """Join every tuple variable; returns (columns, rows)."""
        needed = self._needed_attrs(query, needed_extra)
        keep_always = {ref for ref in query.projection} | set(needed_extra)

        # Point-predicate pushdown: literal equalities are consumed while
        # building the base relations (hash-index probes); only the
        # residual conditions enter the pipeline.
        if self.predicate_pushdown:
            pushable, pending = extract_point_predicates(query)
        else:
            pushable, pending = {}, list(query.conditions)

        # Base relations: projections of the needed attributes — distinct
        # when multiplicity reduction is enabled (paper Section 3.2.1).
        reduce_rows = self.distinct_reduction and query.distinct
        base: dict[str, _BaseRelation] = {}
        for var in query.tuple_vars:
            table = self.db.table(var.table)
            attrs = needed[var.alias] or [table.schema.column_names[0]]
            base[var.alias] = _BaseRelation(
                table, var.alias, attrs, pushable.get(var.alias), reduce_rows
            )

        bound: set[str] = set()

        def applicable(cols: list[AttrRef]) -> list[Condition]:
            """Pending conditions whose every attr ref is now bound."""
            have = set(cols)
            out = []
            for cond in pending:
                if all(ref in have for ref in cond_attr_refs(cond)):
                    out.append(cond)
            return out

        def apply_filters(cols: list[AttrRef], rows: list[tuple]) -> list[tuple]:
            conds = applicable(cols)
            if not conds:
                return rows
            idx = {ref: cols.index(ref) for cond in conds for ref in cond_attr_refs(cond)}
            kept = []
            for row in rows:
                ok = True
                for cond in conds:
                    lval = row[idx[cond.left]]
                    rval = (
                        row[idx[cond.right]]
                        if isinstance(cond.right, AttrRef)
                        else cond.right.value
                    )
                    if not _compare(cond.op, lval, rval):
                        ok = False
                        break
                if ok:
                    kept.append(row)
            for cond in conds:
                pending.remove(cond)
            return kept

        def prune(cols: list[AttrRef], rows: list[tuple]) -> tuple[list[AttrRef], list[tuple]]:
            """Drop columns no pending condition / projection needs; dedup."""
            still_needed = set(keep_always)
            for cond in pending:
                still_needed.update(cond_attr_refs(cond))
            keep_pos = [i for i, c in enumerate(cols) if c in still_needed]
            if len(keep_pos) == len(cols):
                return cols, rows
            new_cols = [cols[i] for i in keep_pos]
            projected = (tuple(r[i] for i in keep_pos) for r in rows)
            if reduce_rows:
                new_rows = list(dict.fromkeys(projected))
            else:
                new_rows = list(projected)
            return new_cols, new_rows

        # Pick the starting variable: smallest base relation (point
        # predicates shrink their relation, so a ``L.Lid = ?`` restriction
        # naturally drives the whole pipeline from that one row).
        order = sorted(query.tuple_vars, key=lambda v: base[v.alias].size)
        start = order[0]
        cols = list(base[start.alias].cols)
        rows = base[start.alias].rows()
        bound.add(start.alias)
        rows = apply_filters(cols, rows)
        cols, rows = prune(cols, rows)

        remaining = [v for v in query.tuple_vars if v.alias != start.alias]
        while remaining:
            # choose the next variable connected to the bound set by an
            # equality condition, preferring the smallest base relation
            candidates = []
            for var in remaining:
                join_conds = [
                    c
                    for c in pending
                    if c.op == "="
                    and isinstance(c.right, AttrRef)
                    and (
                        (c.left.alias == var.alias and c.right.alias in bound)
                        or (c.right.alias == var.alias and c.left.alias in bound)
                    )
                ]
                if join_conds:
                    candidates.append((base[var.alias].size, var, join_conds))
            if not candidates:
                if not self.allow_cartesian:
                    raise QueryError(
                        "query join graph is disconnected (cartesian product "
                        "required); pass allow_cartesian=True to permit it"
                    )
                var = remaining[0]
                join_conds = []
            else:
                candidates.sort(key=lambda t: (t[0], t[1].alias))
                _, var, join_conds = candidates[0]

            vbase = base[var.alias]
            vcols = vbase.cols
            if join_conds:
                # split each join condition into (bound side, new side)
                probe_refs: list[AttrRef] = []
                build_refs: list[AttrRef] = []
                for cond in join_conds:
                    if cond.left.alias == var.alias:
                        build_refs.append(cond.left)
                        probe_refs.append(cond.right)  # type: ignore[arg-type]
                    else:
                        build_refs.append(cond.right)  # type: ignore[arg-type]
                        probe_refs.append(cond.left)
                    pending.remove(cond)
                probe_pos = [cols.index(r) for r in probe_refs]
                joined: list[tuple] = []
                if (
                    vbase.pristine
                    and vbase.reduce
                    and len(rows) * INDEX_JOIN_RATIO < vbase.size
                ):
                    # Index-nested-loop: probe the table's delta-maintained
                    # projection index instead of hashing the build side.
                    index = vbase.table.projection_index(
                        vbase.attrs, [r.attr for r in build_refs]
                    )
                    for row in rows:
                        key = tuple(row[p] for p in probe_pos)
                        if any(k is None for k in key):
                            continue
                        for vrow in index.get(key, ()):
                            joined.append(row + vrow)
                else:
                    build_pos = [vcols.index(r) for r in build_refs]
                    hashmap: dict[tuple, list[tuple]] = {}
                    for vrow in vbase.rows():
                        key = tuple(vrow[p] for p in build_pos)
                        if any(k is None for k in key):
                            continue  # NULL never joins
                        hashmap.setdefault(key, []).append(vrow)
                    for row in rows:
                        key = tuple(row[p] for p in probe_pos)
                        if any(k is None for k in key):
                            continue
                        for vrow in hashmap.get(key, ()):
                            joined.append(row + vrow)
            else:  # explicit cartesian product (opt-in only)
                joined = [row + vrow for row in rows for vrow in vbase.rows()]

            cols = cols + list(vcols)
            bound.add(var.alias)
            remaining = [v for v in remaining if v.alias != var.alias]
            joined = apply_filters(cols, joined)
            cols, rows = prune(cols, joined)

        if pending:  # only single-var conditions could remain; apply them
            rows = apply_filters(cols, rows)
        if pending:
            raise QueryError(f"unapplied conditions remain: {pending}")
        return cols, rows


def explain_query(db: Database, query: ConjunctiveQuery) -> str:
    """A human-readable one-line plan summary (for debugging and docs)."""
    sizes = ", ".join(
        f"{v.alias}:{len(db.table(v.table))}" for v in query.tuple_vars
    )
    return (
        f"hash-join pipeline over {len(query.tuple_vars)} vars "
        f"({sizes}); {len(query.join_conditions())} joins, "
        f"{len(query.filter_conditions())} filters"
    )
