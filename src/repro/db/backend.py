"""The pluggable-backend seam: executor and driver contracts.

Every tier above the storage layer (engine, facade, sharded service,
server) talks to storage through two small contracts defined here:

* :class:`ExecutorProtocol` — the query surface.  Implemented by the
  in-memory :class:`~repro.db.executor.Executor` (hash-join pipeline,
  row-wise and vectorized paths) and by
  :class:`~repro.db.sqlbackend.SqlExecutor` (SQL pushdown via the
  dialect compiler).  :func:`make_executor` picks the right one for a
  database object, so callers never import a concrete executor.
* :class:`Driver` — the statement-runner surface a new SQL backend must
  implement (see ``docs/architecture.md`` for the full contract and
  what the differential suite pins).  Implemented first by
  :class:`~repro.db.drivers.sqlite.SqliteDriver`.

:data:`AnyDatabase` / :data:`AnyTable` are the union aliases the upper
tiers annotate with — a deliberate closed union rather than a protocol,
because the two database implementations are pinned byte-identical by
the differential suites and the upper tiers may rely on either.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Protocol, Union, runtime_checkable

from .database import Database
from .executor import Executor, QueryResult
from .optimizer import PlanCache
from .query import AttrRef, ConjunctiveQuery
from .schema import TableSchema
from .sqlbackend import SqlDatabase, SqlExecutor, SqlTable
from .table import Table

#: Database objects the audit tiers accept (both satisfy the same
#: catalog surface; pinned identical by the differential suites).
AnyDatabase = Union[Database, SqlDatabase]

#: Table objects the audit tiers read from and append to.
AnyTable = Union[Table, SqlTable]


@runtime_checkable
class ExecutorProtocol(Protocol):
    """The query surface every executor implementation must provide.

    Semantics are fixed by the in-memory reference implementation and
    pinned by ``tests/test_differential_executor.py``; the contract
    points that are easy to get wrong in a new backend:

    * NULL never satisfies any comparison (SQL three-valued logic), but
      a NULL *is* one distinct value in ``count_distinct`` /
      ``distinct_values`` result sets;
    * ``distinct_values_in`` drops NULL binding values, never matches
      rows whose restricted attribute is NULL, and counts as ONE query
      in ``queries_executed`` regardless of internal chunking;
    * non-distinct ``execute`` results preserve full join multiplicity
      (the multiplicity-reduction rewrite applies only to distinct
      output).
    """

    db: Any
    queries_executed: int
    plan_cache: PlanCache

    def execute(self, query: ConjunctiveQuery) -> QueryResult:
        """Run ``query`` and return its (optionally distinct) projection."""
        ...

    def count_distinct(
        self, query: ConjunctiveQuery, attr: AttrRef | None = None
    ) -> int:
        """Number of distinct values of ``attr`` over the query result."""
        ...

    def distinct_values(
        self, query: ConjunctiveQuery, attr: AttrRef | None = None
    ) -> set:
        """The distinct value set of ``attr`` over the query result."""
        ...

    def distinct_values_in(
        self,
        query: ConjunctiveQuery,
        attr: AttrRef,
        in_attr: AttrRef,
        in_values: Sequence[Any],
    ) -> set:
        """Batch semijoin: ``distinct_values`` with ``in_attr`` restricted
        to a binding set."""
        ...


class Driver(Protocol):
    """The statement-runner contract a SQL storage backend implements.

    A driver is deliberately dumb: it runs parameterized statements and
    moves encoded rows.  Everything semantic — compilation, value
    encoding, validation, NULL rules — lives above it in the dialect
    and :mod:`~repro.db.sqlbackend` tiers, which is what keeps a new
    backend small (connection handling plus placeholder syntax).
    """

    dialect: str

    def connect(self) -> Any:
        """Open (or return) the live connection, lazily."""
        ...

    def close(self) -> None:
        """Close the connection (idempotent; a later call reconnects)."""
        ...

    def execute(self, sql: str, params: Sequence[Any] = ()) -> list[tuple[Any, ...]]:
        """Run one parameterized statement; return all result rows."""
        ...

    def execute_batch(
        self, sql: str, params: Sequence[Any], values: Sequence[Any]
    ) -> list[tuple[Any, ...]]:
        """Run an IN-marker statement over a whole binding set, chunked
        to the backend's host-parameter limit."""
        ...

    def create_table(self, schema: TableSchema, *, reset: bool = False) -> None:
        """Create one table (and its indexes); ``reset`` drops it first."""
        ...

    def ingest_many(
        self, schema: TableSchema, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Bulk-insert encoded rows transactionally; returns the count."""
        ...

    def snapshot_stats(self) -> dict[str, Any]:
        """Point-in-time driver counters for observability surfaces."""
        ...


def make_executor(
    db: AnyDatabase,
    *,
    allow_cartesian: bool = False,
    distinct_reduction: bool = True,
    predicate_pushdown: bool = True,
    plan_cache: PlanCache | None = None,
    vectorized: bool = True,
) -> ExecutorProtocol:
    """The right executor for a database object.

    A :class:`SqlDatabase` gets a :class:`SqlExecutor` (SQL pushdown);
    anything else gets the in-memory :class:`Executor`.  Both accept the
    same configuration knobs — ``predicate_pushdown`` and ``vectorized``
    are inherent/meaningless under SQL and are simply recorded there.
    """
    if isinstance(db, SqlDatabase):
        return SqlExecutor(
            db,
            allow_cartesian=allow_cartesian,
            distinct_reduction=distinct_reduction,
            predicate_pushdown=predicate_pushdown,
            plan_cache=plan_cache,
            vectorized=vectorized,
        )
    return Executor(
        db,
        allow_cartesian=allow_cartesian,
        distinct_reduction=distinct_reduction,
        predicate_pushdown=predicate_pushdown,
        plan_cache=plan_cache,
        vectorized=vectorized,
    )
