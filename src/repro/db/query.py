"""Conjunctive query representation.

Explanation templates (paper Definition 1) are *stylized queries*:

.. code-block:: sql

    SELECT Log.Lid, A_1, ..., A_m
    FROM Log, T_1, ..., T_n
    WHERE C_1 AND ... AND C_j

where every ``C_i`` compares two attributes (or an attribute and a
constant) with one of ``< <= = >= >``.  This module gives those queries a
first-class, hashable representation that the executor, the optimizer, the
SQL renderer, and the mining cache all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

from .errors import QueryError

#: Comparison operators permitted in explanation-template conditions.
OPERATORS = ("=", "<", "<=", ">", ">=", "!=")

#: Flips an operator when its operands are swapped.
FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True, order=True)
class TupleVar:
    """A table alias in a query's FROM clause (``Appointments A1``)."""

    alias: str
    table: str

    def __str__(self) -> str:
        return f"{self.table} {self.alias}"


@dataclass(frozen=True, order=True)
class AttrRef:
    """A reference ``alias.attr`` to one attribute of one tuple variable."""

    alias: str
    attr: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.attr}"


@dataclass(frozen=True, order=True)
class Literal:
    """A constant operand in a condition (used by decorated templates,
    e.g. restricting ``Groups.Group_Depth = 1``)."""

    value: Any = field(compare=False)
    _key: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", repr(self.value))

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


Operand = AttrRef | Literal


@dataclass(frozen=True, order=True)
class Condition:
    """A single comparison ``left op right``.

    Equality conditions between attributes of *different* tuple variables
    are the join edges of the explanation graph; everything else acts as a
    filter (decoration).
    """

    left: AttrRef
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise QueryError(f"unsupported operator: {self.op!r}")

    @property
    def is_join(self) -> bool:
        """True when this is an equality between two attribute refs of
        different tuple variables (i.e. a join edge, not a decoration)."""
        return (
            self.op == "="
            and isinstance(self.right, AttrRef)
            and self.left.alias != self.right.alias
        )

    def aliases(self) -> set[str]:
        """Aliases of the tuple variables this condition touches."""
        out = {self.left.alias}
        if isinstance(self.right, AttrRef):
            out.add(self.right.alias)
        return out

    def flipped(self) -> "Condition":
        """The same condition with operands swapped (``a < b`` -> ``b > a``).

        Only meaningful when both operands are attribute refs.
        """
        if not isinstance(self.right, AttrRef):
            raise QueryError("cannot flip a condition with a literal operand")
        return Condition(self.right, FLIPPED[self.op], self.left)

    def canonical(self) -> "Condition":
        """Order-independent form: for symmetric ops the lexicographically
        smaller operand goes left, so ``A.x = B.y`` and ``B.y = A.x`` compare
        equal.  Used by the support cache (paper Section 3.2.1)."""
        if (
            isinstance(self.right, AttrRef)
            and self.op in ("=", "!=")
            and (self.right.alias, self.right.attr)
            < (self.left.alias, self.left.attr)
        ):
            return self.flipped()
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``SELECT [DISTINCT] projection FROM tuple_vars WHERE conditions``."""

    tuple_vars: tuple[TupleVar, ...]
    conditions: tuple[Condition, ...]
    projection: tuple[AttrRef, ...]
    distinct: bool = True

    def __post_init__(self) -> None:
        aliases = [v.alias for v in self.tuple_vars]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in query: {aliases}")
        known = set(aliases)
        for cond in self.conditions:
            for ref in cond_attr_refs(cond):
                if ref.alias not in known:
                    raise QueryError(f"condition references unknown alias: {ref}")
        for ref in self.projection:
            if ref.alias not in known:
                raise QueryError(f"projection references unknown alias: {ref}")

    @staticmethod
    def build(
        tuple_vars: Sequence[TupleVar],
        conditions: Iterable[Condition],
        projection: Sequence[AttrRef],
        distinct: bool = True,
    ) -> "ConjunctiveQuery":
        """Convenience constructor accepting any sequences/iterables."""
        return ConjunctiveQuery(
            tuple_vars=tuple(tuple_vars),
            conditions=tuple(conditions),
            projection=tuple(projection),
            distinct=distinct,
        )

    def var(self, alias: str) -> TupleVar:
        """Look up a tuple variable by alias."""
        for v in self.tuple_vars:
            if v.alias == alias:
                return v
        raise QueryError(f"unknown alias: {alias!r}")

    def join_conditions(self) -> list[Condition]:
        """The equality conditions that act as join edges."""
        return [c for c in self.conditions if c.is_join]

    def filter_conditions(self) -> list[Condition]:
        """The non-join (decoration) conditions."""
        return [c for c in self.conditions if not c.is_join]

    def condition_signature(self) -> frozenset:
        """Hashable, order-independent signature of the WHERE clause plus
        the multiset of tables.  Two queries with equal signatures have
        equal support regardless of the order conditions were added —
        the foundation of the mining support cache."""
        tables = tuple(sorted(v.table for v in self.tuple_vars))
        conds = frozenset(
            (str(c.canonical().left), c.canonical().op, str(c.canonical().right))
            for c in self.conditions
        )
        return frozenset([("tables", tables), ("conds", conds)])

    def __str__(self) -> str:
        from .sql import render_query  # local import avoids a cycle

        return render_query(self)


def cond_attr_refs(cond: Condition) -> list[AttrRef]:
    """All attribute refs mentioned by a condition (1 or 2)."""
    refs = [cond.left]
    if isinstance(cond.right, AttrRef):
        refs.append(cond.right)
    return refs


def canonical_query_signature(query: ConjunctiveQuery) -> tuple:
    """Alias-permutation-invariant signature of a query's WHERE clause.

    Two candidate paths that traverse the explanation graph in different
    orders can carry the *same* selection-condition set but number their
    self-join aliases differently (``Groups_1``/``Groups_2`` swapped).  The
    paper's first optimization (Section 3.2.1) caches support by condition
    set, so the cache key must be invariant under renaming aliases of the
    same table.  Explanation queries are tiny (<= ~6 tuple variables, <= 2
    aliases per table), so we brute-force all per-table alias permutations
    and keep the lexicographically smallest rendering.
    """
    from itertools import permutations, product

    by_table: dict[str, list[str]] = {}
    for var in query.tuple_vars:
        by_table.setdefault(var.table, []).append(var.alias)

    tables = tuple(sorted((t, len(aliases)) for t, aliases in by_table.items()))

    def render_with(mapping: dict[str, str]) -> tuple:
        conds = []
        for cond in query.conditions:
            left = (mapping[cond.left.alias], cond.left.attr)
            if isinstance(cond.right, AttrRef):
                right = (mapping[cond.right.alias], cond.right.attr)
                op = cond.op
                if op in ("=", "!=") and right < left:
                    left, right = right, left
                elif op in ("<", "<=", ">", ">=") and right < left:
                    left, right, op = right, left, FLIPPED[op]
                conds.append((left, op, right))
            else:
                conds.append((left, cond.op, str(cond.right)))
        return tuple(sorted(conds))

    table_names = sorted(by_table)
    permutation_sets = []
    for t in table_names:
        aliases = by_table[t]
        canon = [f"{t}#{i}" for i in range(len(aliases))]
        permutation_sets.append([dict(zip(aliases, p)) for p in permutations(canon)])

    best: tuple | None = None
    for combo in product(*permutation_sets):
        mapping: dict[str, str] = {}
        for m in combo:
            mapping.update(m)
        rendered = render_with(mapping)
        if best is None or rendered < best:
            best = rendered
    return (tables, best)
