"""Exception hierarchy for the :mod:`repro.db` relational substrate.

The engine raises narrowly-typed errors so callers (the mining layer, the
CLI, tests) can distinguish schema problems from data problems from query
problems without string matching.
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for every error raised by :mod:`repro.db`."""


class SchemaError(DatabaseError):
    """A table/column definition is invalid or inconsistent.

    Raised for duplicate column names, unknown primary-key columns,
    foreign keys that reference missing tables/columns, and similar
    catalog-level mistakes.
    """


class UnknownTableError(SchemaError):
    """A query or catalog operation referenced a table that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(SchemaError):
    """A query or row operation referenced a column that does not exist."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column {column!r} in table {table!r}")
        self.table = table
        self.column = column


class IntegrityError(DatabaseError):
    """A row violates a declared constraint (arity, type, nullability)."""


class CapacityError(IntegrityError):
    """An insert would exceed a table's configured row cap.

    Raised only by the in-memory :class:`~repro.db.table.Table` when it
    was built with ``max_rows``; SQL-backed tables have no cap (that is
    the point of the SQLite backend — see ``AuditConfig.backend``).
    """


class QueryError(DatabaseError):
    """A query is malformed: unknown alias, unbound attribute, bad operator,
    or a disconnected join graph that would require a cartesian product."""
