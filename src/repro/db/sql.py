"""SQL rendering for explanation-template queries.

Templates are stored internally as :class:`~repro.db.query.ConjunctiveQuery`
objects; this module renders them into the SQL text the paper prints
(Section 2.1) — both the straightforward form and the paper's
*multiplicity-reduced* rewrite that replaces each base table with a
``SELECT DISTINCT`` subquery over only the attributes the path touches
(Section 3.2.1).

The renderer is used by the CLI, the examples, and the docs; the engine
itself executes the structured form directly.
"""

from __future__ import annotations

from .query import AttrRef, ConjunctiveQuery, cond_attr_refs


def render_query(query: ConjunctiveQuery, count_distinct: AttrRef | None = None) -> str:
    """Render a query as standard SQL.

    With ``count_distinct`` set, renders the paper's support-counting form
    ``SELECT COUNT(DISTINCT attr) ...`` instead of the projection.
    """
    if count_distinct is not None:
        select = f"SELECT COUNT(DISTINCT {count_distinct})"
    else:
        head = "SELECT DISTINCT" if query.distinct else "SELECT"
        select = f"{head} " + ", ".join(str(ref) for ref in query.projection)
    frm = "FROM " + ", ".join(f"{v.table} {v.alias}" for v in query.tuple_vars)
    if query.conditions:
        where = "WHERE " + "\n  AND ".join(str(c) for c in query.conditions)
        return f"{select}\n{frm}\n{where}"
    return f"{select}\n{frm}"


def render_query_reduced(
    query: ConjunctiveQuery, count_distinct: AttrRef | None = None
) -> str:
    """Render the multiplicity-reduced rewrite (paper Section 3.2.1).

    Every non-Log tuple variable becomes a ``(SELECT DISTINCT needed-attrs
    FROM table)`` subquery, mirroring the example rewrite in the paper:

    .. code-block:: sql

        SELECT COUNT(DISTINCT L.Lid)
        FROM Log L,
             (SELECT DISTINCT Patient, Doctor FROM Appointments) A
        WHERE L.Patient = A.Patient AND A.Doctor = L.User
    """
    needed: dict[str, set[str]] = {v.alias: set() for v in query.tuple_vars}
    for cond in query.conditions:
        for ref in cond_attr_refs(cond):
            needed[ref.alias].add(ref.attr)
    for ref in query.projection:
        needed[ref.alias].add(ref.attr)
    if count_distinct is not None:
        needed[count_distinct.alias].add(count_distinct.attr)

    from_parts = []
    for var in query.tuple_vars:
        attrs = ", ".join(sorted(needed[var.alias]))
        if var.table.lower() == "log" or not attrs:
            from_parts.append(f"{var.table} {var.alias}")
        else:
            from_parts.append(f"(SELECT DISTINCT {attrs} FROM {var.table}) {var.alias}")

    if count_distinct is not None:
        select = f"SELECT COUNT(DISTINCT {count_distinct})"
    else:
        head = "SELECT DISTINCT" if query.distinct else "SELECT"
        select = f"{head} " + ", ".join(str(ref) for ref in query.projection)
    frm = "FROM " + ",\n     ".join(from_parts)
    if query.conditions:
        where = "WHERE " + "\n  AND ".join(str(c) for c in query.conditions)
        return f"{select}\n{frm}\n{where}"
    return f"{select}\n{frm}"
