"""Compile conjunctive explanation-template queries to parameterized SQL.

The in-memory :class:`~repro.db.executor.Executor` evaluates
:class:`~repro.db.query.ConjunctiveQuery` objects with its own hash-join
pipeline; this module lowers the *same* query objects to SQL text a
relational backend can run, so audits push down to SQLite (and, via new
:class:`~repro.db.backend.Driver` implementations, to other engines)
without touching the template language.

Compilation is dialect-light on purpose: only `?`-style positional
placeholders, double-quoted identifiers, and ``SELECT``/``JOIN``-free
comma FROM lists are emitted — the common denominator of SQLite,
Postgres (via a trivial placeholder rewrite), and DuckDB.  Four query
forms cover the executor's public surface:

* :func:`compile_execute` — ``SELECT [DISTINCT] projection`` (the
  ``execute`` path);
* :func:`compile_count_distinct` — ``SELECT COUNT(*) FROM (SELECT
  DISTINCT attr ...)``.  Deliberately *not* ``COUNT(DISTINCT attr)``:
  SQL's ``COUNT(DISTINCT …)`` ignores NULL, while the in-memory
  executor counts NULL as one distinct value; the subquery form counts
  the NULL row and stays byte-identical to the differential oracle;
* :func:`compile_distinct_values` — ``SELECT DISTINCT attr ...``
  (NULL included, matching the in-memory set semantics);
* :func:`compile_distinct_values_in` — the batch-semijoin form, which
  appends ``alias.attr IN ({placeholders})`` as the *last* WHERE term so
  binding-set values always bind after the query's own literals; the
  driver substitutes the marker per chunk (host-parameter limits).

NULL semantics match the differential oracle end to end: every
comparison is SQL three-valued, so a condition touching a NULL (stored
value *or* a NULL literal bound as a parameter) excludes the row —
exactly the in-memory ``_compare`` rule.

The paper's *Reducing Result Multiplicity* rewrite (Section 3.2.1) is
honored: with ``distinct_reduction`` on, each tuple variable whose final
output is distinct is replaced by a ``(SELECT DISTINCT needed-attrs FROM
table)`` subquery.  Non-distinct projections are never reduced — the
rewrite would change result multiplicity, which the differential suite
pins.

Values cross the wire through :func:`encode_value`/:func:`decode_value`:
booleans ride as 0/1 integers, datetimes as ISO-8601 text (``isoformat``
pads microseconds, so lexicographic order equals chronological order and
range conditions on DATE columns stay correct).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

from .errors import QueryError
from .query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Literal,
    cond_attr_refs,
)
from .schema import ColumnType, TableSchema

#: Marker substituted by the driver with one ``?`` per binding value
#: (chunked to the backend's host-parameter limit).
IN_MARKER = "{__in_placeholders__}"

#: SQL column affinity per declared column type (SQLite-compatible and
#: portable: every emitted name exists in standard SQL or degrades to a
#: sensible affinity).
_AFFINITY: dict[ColumnType, str] = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.STR: "TEXT",
    ColumnType.DATE: "TEXT",
    ColumnType.BOOL: "INTEGER",
}


def quote_ident(name: str) -> str:
    """Double-quote an identifier (schema names are pre-validated to be
    alphanumeric/underscore, so quoting cannot be subverted)."""
    return '"' + name.replace('"', '""') + '"'


def column_affinity(ctype: ColumnType) -> str:
    """The SQL column affinity a declared column type maps to."""
    return _AFFINITY[ctype]


def encode_value(value: Any) -> Any:
    """Encode one Python value for storage / parameter binding.

    ``bool`` is checked before ``int`` (it subclasses int); datetimes
    become ISO-8601 text whose lexicographic order is chronological.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, dt.datetime):
        return value.isoformat()
    return value


def decode_value(value: Any, ctype: ColumnType) -> Any:
    """Decode one stored value back to the declared Python domain."""
    if value is None:
        return None
    if ctype is ColumnType.DATE:
        return dt.datetime.fromisoformat(value)
    if ctype is ColumnType.BOOL:
        return bool(value)
    return value


def create_table_sql(schema: TableSchema) -> str:
    """``CREATE TABLE IF NOT EXISTS`` DDL for one table schema.

    Constraints are intentionally *not* emitted — validation happens in
    the Python tier (same code path as the in-memory backend), so both
    backends reject exactly the same rows with exactly the same errors.
    """
    cols = ", ".join(
        f"{quote_ident(c.name)} {column_affinity(c.ctype)}"
        for c in schema.columns
    )
    return f"CREATE TABLE IF NOT EXISTS {quote_ident(schema.name)} ({cols})"


def insert_sql(schema: TableSchema) -> str:
    """Parameterized single-row INSERT for one table schema."""
    cols = ", ".join(quote_ident(c.name) for c in schema.columns)
    marks = ", ".join("?" for _ in schema.columns)
    return (
        f"INSERT INTO {quote_ident(schema.name)} ({cols}) VALUES ({marks})"
    )


def index_sql(schema: TableSchema) -> list[str]:
    """One single-column index per column (join/probe acceleration).

    Explanation templates join and filter on arbitrary single attributes
    (the in-memory backend lazily hash-indexes every probed column);
    eagerly indexing each column keeps the SQL backend's point and
    semijoin paths index-driven too.
    """
    out = []
    for col in schema.columns:
        name = quote_ident(f"idx_{schema.name}_{col.name}")
        out.append(
            f"CREATE INDEX IF NOT EXISTS {name} ON "
            f"{quote_ident(schema.name)} ({quote_ident(col.name)})"
        )
    return out


@dataclass(frozen=True)
class CompiledQuery:
    """One lowered query: SQL text plus everything needed to run it.

    ``sql`` may contain :data:`IN_MARKER` (when ``has_in_marker`` is
    True); the driver replaces it with ``?`` placeholders per binding
    chunk.  ``param_count`` counts the query's own literal parameters —
    binding-set values always bind *after* them.  ``decoders`` carries
    the declared column type of each output column so result rows can be
    decoded back to the Python domain.
    """

    sql: str
    param_count: int
    decoders: tuple[ColumnType, ...]
    has_in_marker: bool = False


def _alias_tables(query: ConjunctiveQuery) -> dict[str, str]:
    return {v.alias: v.table for v in query.tuple_vars}


def _needed_attrs(
    query: ConjunctiveQuery, extra: tuple[AttrRef, ...]
) -> dict[str, set[str]]:
    """Attributes each alias must expose (conditions + projection + extras)."""
    needed: dict[str, set[str]] = {v.alias: set() for v in query.tuple_vars}
    for cond in query.conditions:
        for ref in cond_attr_refs(cond):
            needed[ref.alias].add(ref.attr)
    for ref in list(query.projection) + list(extra):
        needed[ref.alias].add(ref.attr)
    return needed


def check_connected(query: ConjunctiveQuery, allow_cartesian: bool) -> None:
    """Raise :class:`QueryError` when the join graph is disconnected.

    Mirrors :func:`repro.db.optimizer.build_plan`: only equality
    conditions between two attribute refs of *different* aliases are join
    edges (inequalities filter, they do not connect), and the error
    message is identical so callers cannot tell the backends apart.
    """
    if allow_cartesian or len(query.tuple_vars) <= 1:
        return
    adjacent: dict[str, set[str]] = {v.alias: set() for v in query.tuple_vars}
    for cond in query.conditions:
        if cond.is_join:
            assert isinstance(cond.right, AttrRef)
            adjacent[cond.left.alias].add(cond.right.alias)
            adjacent[cond.right.alias].add(cond.left.alias)
    start = query.tuple_vars[0].alias
    seen = {start}
    frontier = [start]
    while frontier:
        for neighbor in adjacent[frontier.pop()]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    if len(seen) != len(query.tuple_vars):
        raise QueryError(
            "query join graph is disconnected (cartesian product "
            "required); pass allow_cartesian=True to permit it"
        )


def _from_clause(
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
    *,
    reduce_tables: bool,
    extra: tuple[AttrRef, ...],
) -> str:
    """The FROM list, optionally with per-variable DISTINCT subselects
    (the paper's multiplicity-reduction rewrite)."""
    parts = []
    needed = _needed_attrs(query, extra) if reduce_tables else {}
    for var in query.tuple_vars:
        table = quote_ident(var.table)
        alias = quote_ident(var.alias)
        attrs = sorted(needed.get(var.alias, ()))
        if reduce_tables and attrs:
            cols = ", ".join(quote_ident(a) for a in attrs)
            parts.append(f"(SELECT DISTINCT {cols} FROM {table}) {alias}")
        else:
            parts.append(f"{table} {alias}")
    return "FROM " + ", ".join(parts)


def _render_condition(cond: Condition) -> str:
    """One WHERE term; literal operands become ``?`` placeholders."""
    left = f"{quote_ident(cond.left.alias)}.{quote_ident(cond.left.attr)}"
    if isinstance(cond.right, Literal):
        right = "?"
    else:
        right = f"{quote_ident(cond.right.alias)}.{quote_ident(cond.right.attr)}"
    return f"{left} {cond.op} {right}"


def condition_params(query: ConjunctiveQuery) -> tuple[Any, ...]:
    """The encoded literal parameters of a query, in condition order —
    exactly the order :func:`_render_condition` emits placeholders."""
    return tuple(
        encode_value(cond.right.value)
        for cond in query.conditions
        if isinstance(cond.right, Literal)
    )


def _where_clause(query: ConjunctiveQuery, in_attr: AttrRef | None) -> str:
    terms = [_render_condition(c) for c in query.conditions]
    if in_attr is not None:
        terms.append(
            f"{quote_ident(in_attr.alias)}.{quote_ident(in_attr.attr)} "
            f"IN ({IN_MARKER})"
        )
    if not terms:
        return ""
    return " WHERE " + " AND ".join(terms)


def _decoder_for(
    ref: AttrRef,
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
) -> ColumnType:
    table = _alias_tables(query)[ref.alias]
    return schemas[table].column(ref.attr).ctype


def _param_count(query: ConjunctiveQuery) -> int:
    return sum(1 for c in query.conditions if isinstance(c.right, Literal))


def compile_execute(
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
    *,
    distinct_reduction: bool = True,
) -> CompiledQuery:
    """Lower the ``execute`` form: ``SELECT [DISTINCT] projection``.

    Multiplicity reduction applies only to distinct projections (see the
    module docstring); non-distinct queries must preserve the join's raw
    multiplicity to stay oracle-identical.
    """
    head = "SELECT DISTINCT" if query.distinct else "SELECT"
    cols = ", ".join(
        f"{quote_ident(r.alias)}.{quote_ident(r.attr)}"
        for r in query.projection
    )
    frm = _from_clause(
        query,
        schemas,
        reduce_tables=distinct_reduction and query.distinct,
        extra=(),
    )
    sql = f"{head} {cols} {frm}{_where_clause(query, None)}"
    return CompiledQuery(
        sql=sql,
        param_count=_param_count(query),
        decoders=tuple(
            _decoder_for(r, query, schemas) for r in query.projection
        ),
    )


def compile_distinct_values(
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
    attr: AttrRef,
    *,
    distinct_reduction: bool = True,
) -> CompiledQuery:
    """Lower the ``distinct_values`` form: ``SELECT DISTINCT attr``.

    NULL is included when present (SQL DISTINCT keeps one NULL row),
    matching the in-memory executor's value-set semantics.
    """
    col = f"{quote_ident(attr.alias)}.{quote_ident(attr.attr)}"
    frm = _from_clause(
        query, schemas, reduce_tables=distinct_reduction, extra=(attr,)
    )
    sql = f"SELECT DISTINCT {col} {frm}{_where_clause(query, None)}"
    return CompiledQuery(
        sql=sql,
        param_count=_param_count(query),
        decoders=(_decoder_for(attr, query, schemas),),
    )


def compile_count_distinct(
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
    attr: AttrRef,
    *,
    distinct_reduction: bool = True,
) -> CompiledQuery:
    """Lower the ``count_distinct`` form.

    Emitted as ``SELECT COUNT(*) FROM (SELECT DISTINCT attr ...)`` so a
    NULL counts as one distinct value — ``COUNT(DISTINCT attr)`` would
    silently drop it and disagree with the in-memory executor.
    """
    inner = compile_distinct_values(
        query, schemas, attr, distinct_reduction=distinct_reduction
    )
    return CompiledQuery(
        sql=f"SELECT COUNT(*) FROM ({inner.sql})",
        param_count=inner.param_count,
        decoders=(ColumnType.INT,),
    )


def compile_distinct_values_in(
    query: ConjunctiveQuery,
    schemas: Mapping[str, TableSchema],
    attr: AttrRef,
    in_attr: AttrRef,
    *,
    distinct_reduction: bool = True,
) -> CompiledQuery:
    """Lower the batch-semijoin form: ``distinct_values`` restricted by
    ``in_attr IN ({binding set})``.

    The IN term is appended *last*, so the driver binds the query's own
    literal parameters first and the (chunked) binding values after —
    :meth:`repro.db.backend.Driver.execute_batch` fills the marker.  A
    stored NULL never matches IN, and NULL binding values are stripped by
    the executor before compilation, matching the in-memory semantics.
    """
    col = f"{quote_ident(attr.alias)}.{quote_ident(attr.attr)}"
    frm = _from_clause(
        query, schemas, reduce_tables=distinct_reduction, extra=(attr, in_attr)
    )
    sql = f"SELECT DISTINCT {col} {frm}{_where_clause(query, in_attr)}"
    return CompiledQuery(
        sql=sql,
        param_count=_param_count(query),
        decoders=(_decoder_for(attr, query, schemas),),
        has_in_marker=True,
    )
