"""Hash-partitioning the audited database by patient.

Explanation templates are anchored on the accessing user and the patient
whose record was touched (paper Definition 1: the path starts and ends at
the log row), and every log self-join the template set uses equates the
``Patient`` attribute — so the access log can be hash-partitioned by
patient and each partition explained *shard-locally*: an explanation of a
shard's log row only ever binds that shard's log rows plus the (shared)
clinical event tables.

:func:`partition_by_patient` turns one :class:`~repro.db.database.Database`
into ``n`` shard databases.  Each shard owns a private ``Log``
:class:`~repro.db.table.Table` (with its own hash indexes, distinct
projections, and delta maintenance), while the non-log tables are shared
by reference — they are read-only under the auditing workload, and a
process-pool backend deep-copies them implicitly when the shard payload
is pickled into its worker.

The shard function must be stable across processes and Python
invocations (``PYTHONHASHSEED`` randomizes ``hash`` for strings), so it
is CRC32 over the value's string form.
"""

from __future__ import annotations

import zlib
from typing import Any

from .database import Database
from .table import Table


def shard_of(value: Any, n_shards: int) -> int:
    """The shard owning a partition-key value.

    Deterministic across processes and runs (unlike builtin ``hash``,
    which is salted for strings); ``None`` keys deterministically land in
    a shard like any other value.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    return zlib.crc32(str(value).encode()) % n_shards


def partition_by_patient(
    db: Database,
    n_shards: int,
    log_table: str = "Log",
    patient_attr: str = "Patient",
) -> list[Database]:
    """Split a database into ``n_shards`` shard databases by patient.

    Each shard database holds its own :class:`Table` for ``log_table``
    (rows whose ``patient_attr`` hashes to the shard, insertion order
    preserved) and shares every other table object with the original.
    The union of the shard logs is exactly the original log; shards are
    disjoint.  ``n_shards=1`` still builds a private log copy so the
    single-shard service never aliases the caller's table.
    """
    log = db.table(log_table)
    patient_i = log.schema.column_index(patient_attr)
    buckets: list[list[tuple]] = [[] for _ in range(n_shards)]
    for row in log.rows():
        buckets[shard_of(row[patient_i], n_shards)].append(row)
    shards: list[Database] = []
    for index in range(n_shards):
        shard_db = Database(name=f"{db.name}#{index}")
        for name in db.table_names():
            if name == log_table:
                shard_log = Table(log.schema)
                shard_log.insert_many(buckets[index])
                shard_db.add_table(shard_log)
            else:
                shard_db.add_table(db.table(name))
        shards.append(shard_db)
    return shards


def shard_row_counts(
    db: Database,
    n_shards: int,
    log_table: str = "Log",
    patient_attr: str = "Patient",
) -> list[int]:
    """Log rows per shard under :func:`partition_by_patient` (a skew
    diagnostic — no shard databases are built)."""
    log = db.table(log_table)
    patient_i = log.schema.column_index(patient_attr)
    counts = [0] * n_shards
    for row in log.rows():
        counts[shard_of(row[patient_i], n_shards)] += 1
    return counts
