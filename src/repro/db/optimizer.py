"""System-R-style cardinality estimation.

The paper's third mining optimization (*Skipping Non-Selective Paths*,
Section 3.2.1) asks "the database optimizer for the number of log ids it
expects to be in the result of the query"; when the estimate exceeds
``S × c`` the support computation is deferred to the next iteration.  This
module supplies that estimate.

The model is the classical textbook one:

* base cardinality = table row count;
* an equi-join on ``R.a = S.b`` multiplies cardinalities and divides by
  ``max(ndv(R.a), ndv(S.b))``;
* an attribute-literal equality divides by ``ndv``;
* every inequality filter multiplies by a fixed 1/3 selectivity;
* the expected number of *distinct* values of an attribute over an
  estimated result of ``n`` rows uses the balls-in-bins estimator
  ``d · (1 − (1 − 1/d)^n)`` for an attribute with ``d`` distinct values.

An optional ``error_factor`` multiplies every estimate, used by the
ablation benchmark to study the paper's claim that optimizer estimation
error changes performance but never the mined output.

Besides cardinalities, this module hosts the executor's *query planner*:

* :func:`extract_point_predicates` splits a query's WHERE clause into
  per-alias single-variable literal equalities (``L.Lid = 42``-style
  point predicates, which the executor pushes down to hash-index probes
  before the join pipeline) and the residual join/filter conditions;
* :func:`build_plan` turns a query into a :class:`QueryPlan` — the
  needed-attribute projection per tuple variable, the pushdown split,
  and the greedy join order — everything the executor previously
  re-derived on every call;
* :class:`PlanCache` memoizes those plans keyed on *query shape*
  (:func:`query_shape`): literal values are abstracted away, so the
  thousands of per-access point queries a streamed template generates,
  and every repeated batch evaluation of a template, share one plan and
  never re-plan.  Plans carry only names and condition indices (no row
  positions, no schema offsets), so a cached plan stays valid as tables
  grow — join order may become stale, which affects speed, never results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from .database import Database
from .errors import QueryError
from .query import AttrRef, Condition, ConjunctiveQuery, Literal, cond_attr_refs

#: Default selectivity charged to each inequality (decoration) condition.
INEQUALITY_SELECTIVITY = 1.0 / 3.0


def extract_point_predicates(
    query: ConjunctiveQuery,
) -> tuple[dict[str, list[Condition]], list[Condition]]:
    """Split conditions into pushable point predicates and the residual.

    Returns ``(pushable, residual)`` where ``pushable`` maps each tuple
    variable alias to its literal-equality conditions (``alias.attr =
    constant``) and ``residual`` preserves every other condition in order.
    ``attr = NULL`` is never pushable: SQL comparison semantics make it
    unsatisfiable, while an index probe for ``None`` would wrongly return
    the NULL rows — the executor's ordinary filter path rejects it.
    """
    pushable: dict[str, list[Condition]] = {}
    residual: list[Condition] = []
    for cond in query.conditions:
        if (
            cond.op == "="
            and isinstance(cond.right, Literal)
            and cond.right.value is not None
        ):
            pushable.setdefault(cond.left.alias, []).append(cond)
        else:
            residual.append(cond)
    return pushable, residual


@dataclass(frozen=True)
class PlanStep:
    """One pipeline step: bind ``alias``, consuming the join conditions at
    ``join_cond_idx`` (indices into the query's condition tuple).  The
    starting relation and explicit cartesian steps carry no join
    conditions."""

    alias: str
    join_cond_idx: tuple[int, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A data-independent execution recipe for one query shape.

    Everything is expressed in names and condition *indices*, never in
    concrete literal values or row counts, so one plan serves every query
    with the same shape — each streamed access's point query, each batch
    semijoin of the same template — and survives table growth.
    """

    #: alias -> attributes the pipeline must materialize for it (sorted;
    #: empty means "any one column", resolved against the live schema).
    needed: dict[str, tuple[str, ...]]
    #: alias -> indices of its pushable point-predicate conditions.
    pushable_idx: dict[str, tuple[int, ...]]
    #: indices of the conditions entering the join/filter pipeline.
    residual_idx: tuple[int, ...]
    #: the join order (first step is the pipeline's driving relation).
    steps: tuple[PlanStep, ...]


def query_shape(query: ConjunctiveQuery) -> tuple:
    """A hashable abstraction of a query with literal *values* erased.

    Two queries share a shape when they have the same tuple variables,
    conditions (up to literal values — only NULL-ness is kept, since it
    decides pushability), projection, and DISTINCT flag.  This is the
    plan-cache key: per-access point queries that differ only in the
    pinned log id all map to one entry.
    """
    conds = []
    for cond in query.conditions:
        if isinstance(cond.right, AttrRef):
            right = ("attr", cond.right.alias, cond.right.attr)
        else:
            right = ("lit", cond.right.value is None)
        conds.append((cond.left.alias, cond.left.attr, cond.op, right))
    return (
        tuple((v.alias, v.table) for v in query.tuple_vars),
        tuple(conds),
        tuple((r.alias, r.attr) for r in query.projection),
        query.distinct,
    )


class PlanCache:
    """Memoized plan objects keyed on query shape + config.

    Entries are :class:`QueryPlan` objects for the in-memory executor
    and :class:`~repro.db.dialect.CompiledQuery` objects for the SQL
    executor (whose keys carry a ``"sql"`` tag, so the two executors
    never collide in a shared cache).

    Shared by default across every :class:`~repro.db.executor.Executor`
    (engine, support evaluator, monitor all reuse one cache), so repeated
    template evaluation never re-plans.  Bounded LRU eviction keeps the
    cache from growing without limit under adversarial workloads: a hit
    refreshes the entry's recency, and a full cache evicts the least
    recently used plan.  All operations hold an internal lock, so one
    cache may serve concurrent reader threads (``repro.api.AuditService``
    shares one per service).
    """

    def __init__(self, max_size: int = 1024) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        self._plans: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> Any | None:
        """The cached plan for ``key``, counting the hit/miss.

        A hit moves the entry to most-recently-used position.
        """
        with self._lock:
            plan = self._plans.pop(key, None)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
                self._plans[key] = plan
            return plan

    def store(self, key: tuple, plan: Any) -> None:
        """Memoize one plan, evicting the LRU entry when full."""
        with self._lock:
            if key not in self._plans and len(self._plans) >= self.max_size:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan

    def clear(self) -> None:
        """Drop every cached plan and zero the counters."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict:
        """Hit/miss counters (exposed by benchmarks and tests)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PlanCache size={len(self)} hits={self.hits} misses={self.misses}>"


#: The default cache every Executor shares (see :func:`shared_plan_cache`).
_SHARED_PLAN_CACHE = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide plan cache Executors use unless given their own."""
    return _SHARED_PLAN_CACHE


def build_plan(
    db: Database,
    query: ConjunctiveQuery,
    needed_extra: tuple[AttrRef, ...] = (),
    *,
    distinct_reduction: bool = True,
    predicate_pushdown: bool = True,
    allow_cartesian: bool = False,
    in_alias: str | None = None,
) -> QueryPlan:
    """Plan one query: needed attributes, pushdown split, join order.

    ``in_alias`` marks the tuple variable a batch semijoin restricts; it
    is ranked like a point-predicate relation (assumed small) so the
    binding set drives the pipeline.  Table sizes are consulted only to
    order joins — the resulting plan contains no data, so the caller may
    cache and reuse it as tables grow.
    """
    conditions = query.conditions

    needed: dict[str, set[str]] = {v.alias: set() for v in query.tuple_vars}
    for cond in conditions:
        for ref in cond_attr_refs(cond):
            needed[ref.alias].add(ref.attr)
    for ref in list(query.projection) + list(needed_extra):
        if ref.alias not in needed:
            raise QueryError(f"unknown alias in projection/extras: {ref}")
        needed[ref.alias].add(ref.attr)
    needed_attrs = {alias: tuple(sorted(attrs)) for alias, attrs in needed.items()}

    pushable: dict[str, list[int]] = {}
    residual: list[int] = []
    for i, cond in enumerate(conditions):
        if (
            predicate_pushdown
            and cond.op == "="
            and isinstance(cond.right, Literal)
            and cond.right.value is not None
        ):
            pushable.setdefault(cond.left.alias, []).append(i)
        else:
            residual.append(i)

    # Ranks for the greedy order: point-predicate and semijoin-restricted
    # relations are assumed tiny; everything else ranks by its (distinct)
    # size at plan time.
    reduce_rows = distinct_reduction and query.distinct

    def rank(alias: str, table_name: str) -> tuple:
        if alias in pushable:
            return (0, 0)
        if alias == in_alias:
            return (0, 1)
        table = db.table(table_name)
        attrs = needed_attrs[alias] or (table.schema.column_names[0],)
        size = len(table.project_distinct(attrs)) if reduce_rows else len(table)
        return (1, size)

    tuple_vars = list(query.tuple_vars)
    ranks = {v.alias: rank(v.alias, v.table) for v in tuple_vars}
    start_i = min(range(len(tuple_vars)), key=lambda i: (ranks[tuple_vars[i].alias], i))
    start = tuple_vars[start_i]

    bound = {start.alias}
    pending = list(residual)
    steps = [PlanStep(start.alias, ())]

    def drop_bound_filters() -> None:
        """Simulate the executor applying every fully bound condition."""
        pending[:] = [
            i
            for i in pending
            if not all(ref.alias in bound for ref in cond_attr_refs(conditions[i]))
        ]

    drop_bound_filters()
    remaining = [v for v in tuple_vars if v.alias != start.alias]
    while remaining:
        candidates = []
        for var in remaining:
            join_idx = [
                i
                for i in pending
                if conditions[i].op == "="
                and isinstance(conditions[i].right, AttrRef)
                and (
                    (
                        conditions[i].left.alias == var.alias
                        and conditions[i].right.alias in bound
                    )
                    or (
                        conditions[i].right.alias == var.alias
                        and conditions[i].left.alias in bound
                    )
                )
            ]
            if join_idx:
                candidates.append((ranks[var.alias], var.alias, var, join_idx))
        if not candidates:
            if not allow_cartesian:
                raise QueryError(
                    "query join graph is disconnected (cartesian product "
                    "required); pass allow_cartesian=True to permit it"
                )
            var, join_idx = remaining[0], []
        else:
            candidates.sort(key=lambda t: (t[0], t[1]))
            _, _, var, join_idx = candidates[0]
        steps.append(PlanStep(var.alias, tuple(join_idx)))
        bound.add(var.alias)
        remaining = [v for v in remaining if v.alias != var.alias]
        for i in join_idx:
            pending.remove(i)
        drop_bound_filters()

    return QueryPlan(
        needed=needed_attrs,
        pushable_idx={alias: tuple(idx) for alias, idx in pushable.items()},
        residual_idx=tuple(residual),
        steps=tuple(steps),
    )


class CardinalityEstimator:
    """Estimates result sizes and distinct counts for conjunctive queries."""

    def __init__(self, db: Database, error_factor: float = 1.0) -> None:
        if error_factor <= 0:
            raise ValueError("error_factor must be positive")
        self.db = db
        self.error_factor = error_factor

    # ------------------------------------------------------------------
    def table_cardinality(self, table: str) -> int:
        """Row-count statistic for one table."""
        return len(self.db.table(table))

    def ndv(self, table: str, column: str) -> int:
        """Distinct-value statistic for one column (>= 1 to avoid /0)."""
        return max(1, self.db.table(table).ndv(column))

    def _attr_ndv(self, query: ConjunctiveQuery, ref: AttrRef) -> int:
        return self.ndv(query.var(ref.alias).table, ref.attr)

    # ------------------------------------------------------------------
    def estimate_rows(self, query: ConjunctiveQuery) -> float:
        """Estimated row count of the (pre-projection) join result."""
        est = 1.0
        for var in query.tuple_vars:
            est *= max(1, self.table_cardinality(var.table))
        for cond in query.conditions:
            if cond.op == "=":
                if isinstance(cond.right, AttrRef):
                    d = max(
                        self._attr_ndv(query, cond.left),
                        self._attr_ndv(query, cond.right),
                    )
                else:
                    d = self._attr_ndv(query, cond.left)
                est /= max(1, d)
            elif cond.op == "!=":
                pass  # nearly non-selective; charge nothing
            else:
                est *= INEQUALITY_SELECTIVITY
        return est * self.error_factor

    def estimate_distinct(self, query: ConjunctiveQuery, attr: AttrRef) -> float:
        """Expected ``COUNT(DISTINCT attr)`` over the estimated result.

        This is the number the skip-non-selective optimization compares
        against ``S × c``.
        """
        n = self.estimate_rows(query)
        d = float(self._attr_ndv(query, attr))
        if n <= 0:
            return 0.0
        if n / d > 50:  # avoid pow underflow for huge n; saturates at d
            return d
        return d * (1.0 - (1.0 - 1.0 / d) ** n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CardinalityEstimator error_factor={self.error_factor}>"
