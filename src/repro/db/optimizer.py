"""System-R-style cardinality estimation.

The paper's third mining optimization (*Skipping Non-Selective Paths*,
Section 3.2.1) asks "the database optimizer for the number of log ids it
expects to be in the result of the query"; when the estimate exceeds
``S × c`` the support computation is deferred to the next iteration.  This
module supplies that estimate.

The model is the classical textbook one:

* base cardinality = table row count;
* an equi-join on ``R.a = S.b`` multiplies cardinalities and divides by
  ``max(ndv(R.a), ndv(S.b))``;
* an attribute-literal equality divides by ``ndv``;
* every inequality filter multiplies by a fixed 1/3 selectivity;
* the expected number of *distinct* values of an attribute over an
  estimated result of ``n`` rows uses the balls-in-bins estimator
  ``d · (1 − (1 − 1/d)^n)`` for an attribute with ``d`` distinct values.

An optional ``error_factor`` multiplies every estimate, used by the
ablation benchmark to study the paper's claim that optimizer estimation
error changes performance but never the mined output.

Besides cardinalities, this module hosts the executor's one *plan
rewrite*: :func:`extract_point_predicates` splits a query's WHERE clause
into per-alias single-variable literal equalities (``L.Lid = 42``-style
point predicates, which the executor pushes down to hash-index probes
before the join pipeline) and the residual join/filter conditions.
"""

from __future__ import annotations

from .database import Database
from .query import AttrRef, Condition, ConjunctiveQuery, Literal

#: Default selectivity charged to each inequality (decoration) condition.
INEQUALITY_SELECTIVITY = 1.0 / 3.0


def extract_point_predicates(
    query: ConjunctiveQuery,
) -> tuple[dict[str, list[Condition]], list[Condition]]:
    """Split conditions into pushable point predicates and the residual.

    Returns ``(pushable, residual)`` where ``pushable`` maps each tuple
    variable alias to its literal-equality conditions (``alias.attr =
    constant``) and ``residual`` preserves every other condition in order.
    ``attr = NULL`` is never pushable: SQL comparison semantics make it
    unsatisfiable, while an index probe for ``None`` would wrongly return
    the NULL rows — the executor's ordinary filter path rejects it.
    """
    pushable: dict[str, list[Condition]] = {}
    residual: list[Condition] = []
    for cond in query.conditions:
        if (
            cond.op == "="
            and isinstance(cond.right, Literal)
            and cond.right.value is not None
        ):
            pushable.setdefault(cond.left.alias, []).append(cond)
        else:
            residual.append(cond)
    return pushable, residual


class CardinalityEstimator:
    """Estimates result sizes and distinct counts for conjunctive queries."""

    def __init__(self, db: Database, error_factor: float = 1.0) -> None:
        if error_factor <= 0:
            raise ValueError("error_factor must be positive")
        self.db = db
        self.error_factor = error_factor

    # ------------------------------------------------------------------
    def table_cardinality(self, table: str) -> int:
        """Row-count statistic for one table."""
        return len(self.db.table(table))

    def ndv(self, table: str, column: str) -> int:
        """Distinct-value statistic for one column (>= 1 to avoid /0)."""
        return max(1, self.db.table(table).ndv(column))

    def _attr_ndv(self, query: ConjunctiveQuery, ref: AttrRef) -> int:
        return self.ndv(query.var(ref.alias).table, ref.attr)

    # ------------------------------------------------------------------
    def estimate_rows(self, query: ConjunctiveQuery) -> float:
        """Estimated row count of the (pre-projection) join result."""
        est = 1.0
        for var in query.tuple_vars:
            est *= max(1, self.table_cardinality(var.table))
        for cond in query.conditions:
            if cond.op == "=":
                if isinstance(cond.right, AttrRef):
                    d = max(
                        self._attr_ndv(query, cond.left),
                        self._attr_ndv(query, cond.right),
                    )
                else:
                    d = self._attr_ndv(query, cond.left)
                est /= max(1, d)
            elif cond.op == "!=":
                pass  # nearly non-selective; charge nothing
            else:
                est *= INEQUALITY_SELECTIVITY
        return est * self.error_factor

    def estimate_distinct(self, query: ConjunctiveQuery, attr: AttrRef) -> float:
        """Expected ``COUNT(DISTINCT attr)`` over the estimated result.

        This is the number the skip-non-selective optimization compares
        against ``S × c``.
        """
        n = self.estimate_rows(query)
        d = float(self._attr_ndv(query, attr))
        if n <= 0:
            return 0.0
        if n / d > 50:  # avoid pow underflow for huge n; saturates at d
            return d
        return d * (1.0 - (1.0 - 1.0 / d) ** n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CardinalityEstimator error_factor={self.error_factor}>"
