"""In-memory relational substrate for explanation-based auditing.

This subpackage stands in for the PostgreSQL instance the paper runs on
(Section 5.1).  It provides exactly the capabilities the auditing system
needs from its DBMS:

* a catalog of typed tables with primary/foreign keys (:mod:`.schema`,
  :mod:`.database`);
* hash-join evaluation of conjunctive path queries with
  ``COUNT(DISTINCT …)`` support counting (:mod:`.executor`);
* optimizer cardinality estimates for the skip-non-selective-paths
  optimization (:mod:`.optimizer`);
* SQL rendering of templates for display (:mod:`.sql`) and CSV interchange
  (:mod:`.csvio`);
* a pluggable SQL storage backend (:mod:`.backend`, :mod:`.dialect`,
  :mod:`.sqlbackend`, :mod:`.drivers`) that compiles the same template
  queries to parameterized SQL — SQLite first — so audits are not capped
  by RAM (see ``docs/architecture.md``).
"""

from .backend import AnyDatabase, AnyTable, Driver, ExecutorProtocol, make_executor
from .database import Database
from .dialect import CompiledQuery
from .drivers import SqliteDriver
from .errors import (
    CapacityError,
    DatabaseError,
    IntegrityError,
    QueryError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import Executor, QueryResult, explain_query
from .optimizer import (
    CardinalityEstimator,
    PlanCache,
    QueryPlan,
    build_plan,
    extract_point_predicates,
    query_shape,
    shared_plan_cache,
)
from .query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Literal,
    TupleVar,
    canonical_query_signature,
)
from .schema import Column, ColumnType, ForeignKey, TableSchema
from .sharding import partition_by_patient, shard_of, shard_row_counts
from .parser import parse_query, template_from_sql
from .sql import render_query, render_query_reduced
from .sqlbackend import (
    SqlDatabase,
    SqlExecutor,
    SqlTable,
    open_sql_database,
    shard_db_path,
)
from .table import Table
from .csvio import load_database, read_table_csv, save_database, write_table_csv

__all__ = [
    "AnyDatabase",
    "AnyTable",
    "AttrRef",
    "CapacityError",
    "CardinalityEstimator",
    "Column",
    "ColumnType",
    "CompiledQuery",
    "Condition",
    "ConjunctiveQuery",
    "Database",
    "DatabaseError",
    "Driver",
    "Executor",
    "ExecutorProtocol",
    "ForeignKey",
    "IntegrityError",
    "Literal",
    "PlanCache",
    "QueryError",
    "QueryPlan",
    "QueryResult",
    "SchemaError",
    "SqlDatabase",
    "SqlExecutor",
    "SqlTable",
    "SqliteDriver",
    "Table",
    "TableSchema",
    "TupleVar",
    "UnknownColumnError",
    "UnknownTableError",
    "build_plan",
    "make_executor",
    "open_sql_database",
    "shard_db_path",
    "canonical_query_signature",
    "explain_query",
    "extract_point_predicates",
    "load_database",
    "partition_by_patient",
    "query_shape",
    "shard_of",
    "shard_row_counts",
    "shared_plan_cache",
    "parse_query",
    "read_table_csv",
    "render_query",
    "template_from_sql",
    "render_query_reduced",
    "save_database",
    "write_table_csv",
]
