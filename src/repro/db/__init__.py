"""In-memory relational substrate for explanation-based auditing.

This subpackage stands in for the PostgreSQL instance the paper runs on
(Section 5.1).  It provides exactly the capabilities the auditing system
needs from its DBMS:

* a catalog of typed tables with primary/foreign keys (:mod:`.schema`,
  :mod:`.database`);
* hash-join evaluation of conjunctive path queries with
  ``COUNT(DISTINCT …)`` support counting (:mod:`.executor`);
* optimizer cardinality estimates for the skip-non-selective-paths
  optimization (:mod:`.optimizer`);
* SQL rendering of templates for display (:mod:`.sql`) and CSV interchange
  (:mod:`.csvio`).
"""

from .database import Database
from .errors import (
    DatabaseError,
    IntegrityError,
    QueryError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
)
from .executor import Executor, QueryResult, explain_query
from .optimizer import (
    CardinalityEstimator,
    PlanCache,
    QueryPlan,
    build_plan,
    extract_point_predicates,
    query_shape,
    shared_plan_cache,
)
from .query import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    Literal,
    TupleVar,
    canonical_query_signature,
)
from .schema import Column, ColumnType, ForeignKey, TableSchema
from .sharding import partition_by_patient, shard_of, shard_row_counts
from .parser import parse_query, template_from_sql
from .sql import render_query, render_query_reduced
from .table import Table
from .csvio import load_database, read_table_csv, save_database, write_table_csv

__all__ = [
    "AttrRef",
    "CardinalityEstimator",
    "Column",
    "ColumnType",
    "Condition",
    "ConjunctiveQuery",
    "Database",
    "DatabaseError",
    "Executor",
    "ForeignKey",
    "IntegrityError",
    "Literal",
    "PlanCache",
    "QueryError",
    "QueryPlan",
    "QueryResult",
    "SchemaError",
    "Table",
    "TableSchema",
    "TupleVar",
    "UnknownColumnError",
    "UnknownTableError",
    "build_plan",
    "canonical_query_signature",
    "explain_query",
    "extract_point_predicates",
    "load_database",
    "partition_by_patient",
    "query_shape",
    "shard_of",
    "shard_row_counts",
    "shared_plan_cache",
    "parse_query",
    "read_table_csv",
    "render_query",
    "template_from_sql",
    "render_query_reduced",
    "save_database",
    "write_table_csv",
]
