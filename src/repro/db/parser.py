"""Parsing explanation templates from SQL text.

The paper presents every template as SQL (Section 2.1); administrators
review and author templates in that form.  This module accepts the same
dialect the renderer in :mod:`repro.db.sql` emits:

.. code-block:: sql

    SELECT [DISTINCT] L.Lid, ...      -- or SELECT COUNT(DISTINCT L.Lid)
    FROM Log L, Appointments A, ...
    WHERE L.Patient = A.Patient
      AND A.Doctor = L.User
      AND A.Date > 5                  -- decorations: literals/inequalities

and returns a :class:`~repro.db.query.ConjunctiveQuery`.  The companion
:func:`template_from_sql` goes one step further: it reconstructs the
underlying explanation *path* (the chain from ``Log.Patient`` back to
``Log.User``) and wraps it as an :class:`ExplanationTemplate`, with any
non-chain conditions attached as decorations.
"""

from __future__ import annotations

import re
from typing import Any

from .errors import QueryError
from .query import AttrRef, Condition, ConjunctiveQuery, Literal, TupleVar

_TOKEN = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),.])
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN.match(sql, pos)
        if not match:
            if sql[pos:].strip() == "":
                break
            raise QueryError(f"cannot tokenize SQL at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append((kind, text))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise QueryError("unexpected end of SQL")
        self.pos += 1
        return tok

    def expect_word(self, *words: str) -> str:
        kind, text = self.next()
        if kind != "word" or text.upper() not in words:
            raise QueryError(f"expected {'/'.join(words)}, got {text!r}")
        return text.upper()

    def expect_punct(self, punct: str) -> None:
        kind, text = self.next()
        if kind != "punct" or text != punct:
            raise QueryError(f"expected {punct!r}, got {text!r}")

    def accept_word(self, *words: str) -> bool:
        tok = self.peek()
        if tok and tok[0] == "word" and tok[1].upper() in words:
            self.pos += 1
            return True
        return False

    def accept_punct(self, punct: str) -> bool:
        tok = self.peek()
        if tok and tok[0] == "punct" and tok[1] == punct:
            self.pos += 1
            return True
        return False

    # ------------------------------------------------------------------
    def attr_ref(self) -> AttrRef:
        kind, alias = self.next()
        if kind != "word":
            raise QueryError(f"expected alias, got {alias!r}")
        self.expect_punct(".")
        kind, attr = self.next()
        if kind != "word":
            raise QueryError(f"expected attribute, got {attr!r}")
        return AttrRef(alias, attr)

    def operand(self) -> Any:
        kind, text = self.next()
        if kind == "string":
            return Literal(text[1:-1].replace("''", "'"))
        if kind == "number":
            value = float(text) if "." in text else int(text)
            return Literal(value)
        if kind == "word":
            self.expect_punct(".")
            k2, attr = self.next()
            if k2 != "word":
                raise QueryError(f"expected attribute, got {attr!r}")
            return AttrRef(text, attr)
        raise QueryError(f"unexpected operand: {text!r}")

    def parse(self) -> ConjunctiveQuery:
        self.expect_word("SELECT")
        distinct = False
        projection: list[AttrRef] = []
        if self.accept_word("COUNT"):
            self.expect_punct("(")
            self.expect_word("DISTINCT")
            projection.append(self.attr_ref())
            self.expect_punct(")")
            distinct = True
        else:
            distinct = self.accept_word("DISTINCT")
            projection.append(self.attr_ref())
            while self.accept_punct(","):
                projection.append(self.attr_ref())

        self.expect_word("FROM")
        tuple_vars: list[TupleVar] = []
        while True:
            kind, table = self.next()
            if kind != "word":
                raise QueryError(f"expected table name, got {table!r}")
            kind, alias = self.next()
            if kind != "word":
                raise QueryError(f"expected alias, got {alias!r}")
            tuple_vars.append(TupleVar(alias, table))
            if not self.accept_punct(","):
                break

        conditions: list[Condition] = []
        if self.accept_word("WHERE"):
            while True:
                left = self.operand()
                if not isinstance(left, AttrRef):
                    raise QueryError("condition must start with alias.attr")
                kind, op = self.next()
                if kind != "op":
                    raise QueryError(f"expected operator, got {op!r}")
                if op == "<>":
                    op = "!="
                right = self.operand()
                conditions.append(Condition(left, op, right))
                if not self.accept_word("AND"):
                    break
        if self.peek() is not None:
            raise QueryError(f"trailing tokens after query: {self.peek()!r}")
        return ConjunctiveQuery.build(tuple_vars, conditions, projection, distinct)


def parse_query(sql: str) -> ConjunctiveQuery:
    """Parse an explanation-template query from SQL text."""
    return _Parser(_tokenize(sql)).parse()


# ----------------------------------------------------------------------
# template reconstruction
# ----------------------------------------------------------------------
def template_from_sql(
    sql: str,
    log_table: str = "Log",
    start_attr: str = "Patient",
    end_attr: str = "User",
    description: str | None = None,
    name: str | None = None,
    log_id_attr: str = "Lid",
):
    """Parse SQL and reconstruct the explanation template it denotes.

    The cross-variable equality conditions must form a chain from
    ``log.start_attr`` back to ``log.end_attr`` (Definition 1); remaining
    conditions (literals, inequalities, same-variable comparisons) become
    decorations.  Raises :class:`QueryError` when no valid chain exists.
    """
    from ..core.edges import EdgeKind, SchemaAttr, SchemaEdge
    from ..core.path import Path
    from ..core.template import ExplanationTemplate

    query = parse_query(sql)
    table_of = {v.alias: v.table for v in query.tuple_vars}
    log_aliases = [v.alias for v in query.tuple_vars if v.table == log_table]
    if not log_aliases:
        raise QueryError(f"no {log_table!r} tuple variable in query")

    join_conds = [
        c
        for c in query.conditions
        if c.op == "=" and isinstance(c.right, AttrRef) and c.left.alias != c.right.alias
    ]
    decoration_conds = [c for c in query.conditions if c not in join_conds]

    def make_edge(src: AttrRef, dst: AttrRef) -> SchemaEdge:
        kind = (
            EdgeKind.SELF_JOIN
            if table_of[src.alias] == table_of[dst.alias]
            else EdgeKind.ADMIN
        )
        return SchemaEdge(
            SchemaAttr(table_of[src.alias], src.attr),
            SchemaAttr(table_of[dst.alias], dst.attr),
            kind,
        )

    class _Endpoints:
        """The slice of SchemaGraph that Path.forward_seed consumes."""

        def __init__(self) -> None:
            self.log_table = log_table
            self.start = SchemaAttr(log_table, start_attr)
            self.end = SchemaAttr(log_table, end_attr)

    endpoints = _Endpoints()

    def search(root_alias: str):
        """DFS over orderings of the join conditions, building the Path
        incrementally; returns (path, alias_map) or None."""

        def dfs(path, alias_map, remaining):
            if not remaining:
                return (path, alias_map) if path.is_explanation else None
            current_alias = next(
                (a for a, v in alias_map.items() if v == path.last_var()), None
            )
            for cond in list(remaining):
                for left, right in (
                    (cond.left, cond.right),
                    (cond.right, cond.left),
                ):
                    if left.alias != current_alias:
                        continue
                    closing = (
                        right.alias == root_alias and right.attr == end_attr
                    )
                    nxt = path.extend_forward(make_edge(left, right))
                    if nxt is None:
                        continue
                    new_map = dict(alias_map)
                    if closing:
                        if alias_map.get(root_alias) != 0:
                            continue
                    elif right.alias not in new_map:
                        new_map[right.alias] = nxt.last_var()
                    elif new_map[right.alias] != nxt.last_var():
                        continue
                    rest = list(remaining)
                    rest.remove(cond)
                    found = dfs(nxt, new_map, rest)
                    if found:
                        return found
            return None

        # seed: any join condition touching root.start_attr
        for cond in join_conds:
            for left, right in ((cond.left, cond.right), (cond.right, cond.left)):
                if left.alias == root_alias and left.attr == start_attr:
                    seed_path = Path.forward_seed(endpoints, make_edge(left, right))
                    if seed_path is None:
                        continue
                    alias_map = {root_alias: 0}
                    if right.alias == root_alias and right.attr == end_attr:
                        pass  # degenerate single-edge explanation
                    else:
                        alias_map[right.alias] = seed_path.last_var()
                    rest = list(join_conds)
                    rest.remove(cond)
                    found = dfs(seed_path, alias_map, rest)
                    if found:
                        return found
        return None

    found = None
    for root in log_aliases:
        found = search(root)
        if found:
            break
    if not found:
        raise QueryError(
            "the query's equality joins do not form an explanation path "
            f"from {log_table}.{start_attr} to {log_table}.{end_attr}"
        )
    path, alias_map = found

    # rewrite decoration conditions into the path's alias space
    def remap(ref: AttrRef) -> AttrRef:
        if ref.alias not in alias_map:
            raise QueryError(
                f"decoration references alias {ref.alias!r} outside the path"
            )
        return AttrRef(path.alias_of(alias_map[ref.alias]), ref.attr)

    decorations = []
    for cond in decoration_conds:
        left = remap(cond.left)
        right = (
            remap(cond.right) if isinstance(cond.right, AttrRef) else cond.right
        )
        decorations.append(Condition(left, cond.op, right))

    return ExplanationTemplate(
        path=path,
        decorations=tuple(decorations),
        description=description,
        name=name,
        log_id_attr=log_id_attr,
    )
