"""SQLite storage driver (stdlib ``sqlite3``) for the SQL backend.

This is the first implementation of the :class:`repro.db.backend.Driver`
contract.  Design points that matter for the audit workload:

* **Lazy connection** — the ``sqlite3`` connection is opened on first
  use, never in ``__init__``.  A driver object can therefore be built in
  a parent process and shipped to a shard worker (the process-sharded
  service forks/spawns workers whose initializer builds shard state);
  the connection is only ever created in the process that uses it.
* **One connection, one lock** — the audit service serializes writers
  behind its own readers-writer lock, but readers run concurrently from
  a thread pool, so the driver guards its connection with an RLock and
  opens it with ``check_same_thread=False``.  Statement execution and
  cursor drain happen inside the lock; decoded rows are handed out as
  plain lists.
* **Autocommit + explicit batch transactions** — the connection runs in
  autocommit (``isolation_level=None``); :meth:`ingest_many` wraps each
  batch in an explicit ``BEGIN``/``COMMIT`` so a thousand-row ingest is
  one fsync, not a thousand.
* **Chunked binding sets** — SQLite caps host parameters per statement
  (999 on older builds).  :meth:`execute_batch` splits an ``IN (...)``
  binding set into chunks below that cap, substitutes the dialect's
  :data:`~repro.db.dialect.IN_MARKER` per chunk, and unions the chunk
  results — one *logical* query regardless of chunk count, mirroring
  the in-memory executor's "a batch semijoin counts as one query" rule.
* **Schema catalog table** — every ingested table's
  :class:`~repro.db.schema.TableSchema` is stored as JSON in
  ``_repro_schema``, written only after its rows are fully ingested, so
  reopening a database file can rebuild the typed catalog (and a crash
  mid-ingest leaves no catalog row, which the opener treats as "rebuild
  from source").
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections.abc import Iterable, Sequence
from typing import Any

from ..dialect import IN_MARKER, create_table_sql, index_sql, insert_sql, quote_ident
from ..schema import TableSchema

#: Stay comfortably below SQLITE_MAX_VARIABLE_NUMBER (999 on the oldest
#: supported builds), leaving room for a query's own literal parameters.
MAX_BATCH_PARAMS = 500

#: Rows per executemany transaction chunk during bulk ingest.
INGEST_CHUNK_ROWS = 1000

#: Name of the schema catalog table (underscore prefix keeps it out of
#: the user's table namespace — user identifiers are alphanumeric only).
SCHEMA_TABLE = "_repro_schema"


class SqliteDriver:
    """:class:`repro.db.backend.Driver` over a SQLite file (or memory).

    ``path`` of ``None`` opens a private in-memory database — same
    semantics as a file, zero filesystem footprint (used for unit tests
    and for per-shard databases when no ``db_path`` is configured).
    """

    dialect = "sqlite"

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.RLock()
        #: Statement-level counters surfaced by :meth:`snapshot_stats`.
        self.statements_executed = 0
        self.rows_ingested = 0
        self.batch_chunks = 0

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> sqlite3.Connection:
        """The live connection, opened lazily (see module docstring)."""
        with self._lock:
            if self._conn is None:
                self._conn = sqlite3.connect(
                    self.path if self.path is not None else ":memory:",
                    check_same_thread=False,
                    isolation_level=None,
                )
            return self._conn

    def close(self) -> None:
        """Close the connection (idempotent); a later call reconnects."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> list[tuple[Any, ...]]:
        """Run one parameterized statement; return all rows."""
        conn = self.connect()
        with self._lock:
            self.statements_executed += 1
            cursor = conn.execute(sql, tuple(params))
            rows = cursor.fetchall()
            cursor.close()
            return rows

    def execute_batch(
        self, sql: str, params: Sequence[Any], values: Sequence[Any]
    ) -> list[tuple[Any, ...]]:
        """Run an :data:`IN_MARKER` statement over a whole binding set.

        ``values`` is split into host-parameter-safe chunks; each chunk
        substitutes its own ``?`` list for the marker and binds after
        ``params`` (the dialect emits the IN term last, so positional
        order is params-then-values).  Chunk results are concatenated —
        for the DISTINCT queries the dialect compiles, the union of
        chunk value-sets equals the value set of the unchunked query.
        """
        if IN_MARKER not in sql:
            raise ValueError("execute_batch requires an IN-marker statement")
        if not values:
            return []
        chunk_size = max(1, MAX_BATCH_PARAMS - len(params))
        out: list[tuple[Any, ...]] = []
        values = list(values)
        for start in range(0, len(values), chunk_size):
            chunk = values[start : start + chunk_size]
            marks = ", ".join("?" for _ in chunk)
            with self._lock:
                self.batch_chunks += 1
            out.extend(
                self.execute(
                    sql.replace(IN_MARKER, marks), tuple(params) + tuple(chunk)
                )
            )
        return out

    # ------------------------------------------------------------------
    # DDL + ingest
    # ------------------------------------------------------------------
    def ensure_schema_catalog(self) -> None:
        """Create the ``_repro_schema`` catalog table if absent."""
        self.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_ident(SCHEMA_TABLE)} "
            "(name TEXT PRIMARY KEY, schema_json TEXT)"
        )

    def create_table(self, schema: TableSchema, *, reset: bool = False) -> None:
        """Create one table (and its per-column indexes).

        With ``reset`` the table and its catalog row are dropped first —
        the opener uses this when a database file exists but its catalog
        is absent or stale (e.g. a crash mid-ingest).
        """
        self.ensure_schema_catalog()
        if reset:
            self.execute(f"DROP TABLE IF EXISTS {quote_ident(schema.name)}")
            self.execute(
                f"DELETE FROM {quote_ident(SCHEMA_TABLE)} WHERE name = ?",
                (schema.name,),
            )
        self.execute(create_table_sql(schema))
        for statement in index_sql(schema):
            self.execute(statement)

    def register_schema(self, schema: TableSchema, schema_json: dict[str, Any]) -> None:
        """Record a table's schema in the catalog (call *after* ingest —
        the catalog row is the backend's "table is complete" marker)."""
        self.execute(
            f"INSERT OR REPLACE INTO {quote_ident(SCHEMA_TABLE)} "
            "(name, schema_json) VALUES (?, ?)",
            (schema.name, json.dumps(schema_json)),
        )

    def load_schema_catalog(self) -> dict[str, dict[str, Any]]:
        """The stored catalog: ``{table name: schema JSON blob}``.

        Empty when the file has no catalog table (fresh or foreign DB).
        """
        rows = self.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = ?",
            (SCHEMA_TABLE,),
        )
        if not rows:
            return {}
        return {
            name: json.loads(blob)
            for name, blob in self.execute(
                f"SELECT name, schema_json FROM {quote_ident(SCHEMA_TABLE)} "
                "ORDER BY rowid"
            )
        }

    def ingest_many(
        self, schema: TableSchema, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Bulk-insert encoded rows in chunked explicit transactions.

        Returns the number of rows ingested.  Rows must already be
        encoded (:func:`repro.db.dialect.encode_value`) and validated —
        the SQL table object owns both steps, keeping the driver a thin
        statement runner.
        """
        conn = self.connect()
        sql = insert_sql(schema)
        total = 0
        batch: list[tuple[Any, ...]] = []

        def flush() -> None:
            nonlocal total
            if not batch:
                return
            with self._lock:
                self.statements_executed += 1
                conn.execute("BEGIN")
                try:
                    conn.executemany(sql, batch)
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
                self.rows_ingested += len(batch)
            total += len(batch)
            batch.clear()

        for row in rows:
            batch.append(tuple(row))
            if len(batch) >= INGEST_CHUNK_ROWS:
                flush()
        flush()
        return total

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def table_rowcount(self, name: str) -> int:
        """``COUNT(*)`` of one table."""
        rows = self.execute(f"SELECT COUNT(*) FROM {quote_ident(name)}")
        return int(rows[0][0])

    def snapshot_stats(self) -> dict[str, Any]:
        """Point-in-time driver counters (the Driver-contract surface)."""
        with self._lock:
            return {
                "dialect": self.dialect,
                "path": self.path if self.path is not None else ":memory:",
                "connected": self._conn is not None,
                "statements_executed": self.statements_executed,
                "rows_ingested": self.rows_ingested,
                "batch_chunks": self.batch_chunks,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = self.path if self.path is not None else ":memory:"
        return f"<SqliteDriver {target!r} statements={self.statements_executed}>"
