"""Per-backend storage drivers for the SQL execution tier.

Each driver implements the :class:`repro.db.backend.Driver` contract
(connect / ingest_many / execute / execute_batch / snapshot_stats) for
one engine.  :class:`~repro.db.drivers.sqlite.SqliteDriver` (stdlib
``sqlite3``) ships first; the contract is deliberately shaped so a
Postgres or ClickHouse driver only has to swap connection handling and
the placeholder dialect.
"""

from .sqlite import SqliteDriver

__all__ = ["SqliteDriver"]
