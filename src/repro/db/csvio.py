"""CSV import/export for tables and whole databases.

The paper's study ships de-identified CSV extracts of the CareWeb tables;
this module provides the equivalent interchange format so users can load
their own access logs and event tables into the auditing system, and so
the synthetic generator can persist datasets for repeated experiments.

Layout of a database directory::

    mydb/
      _schema.json          # table definitions (names, types, keys)
      Log.csv
      Appointments.csv
      ...
"""

from __future__ import annotations

import csv
import json
import os

from .database import Database
from .errors import SchemaError
from .schema import Column, ColumnType, ForeignKey, TableSchema
from .table import Table


def write_table_csv(table: Table, path: str) -> int:
    """Write one table to ``path``; returns the number of rows written."""
    schema = table.schema
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(schema.column_names)
        for row in table.rows():
            writer.writerow(
                [col.ctype.render(v) for col, v in zip(schema.columns, row)]
            )
    return len(table)


def read_table_csv(schema: TableSchema, path: str) -> Table:
    """Load a CSV (with header) into a new table conforming to ``schema``."""
    table = Table(schema)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return table
        if tuple(header) != schema.column_names:
            raise SchemaError(
                f"CSV header {header} does not match schema "
                f"{list(schema.column_names)} for table {schema.name!r}"
            )
        for raw in reader:
            values = [
                col.ctype.parse(cell) for col, cell in zip(schema.columns, raw)
            ]
            table.insert(values)
    return table


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.ctype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {"column": fk.column, "ref_table": fk.ref_table, "ref_column": fk.ref_column}
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_json(blob: dict) -> TableSchema:
    return TableSchema(
        name=blob["name"],
        columns=tuple(
            Column(c["name"], ColumnType(c["type"]), c.get("nullable", True))
            for c in blob["columns"]
        ),
        primary_key=tuple(blob.get("primary_key", [])),
        foreign_keys=tuple(
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in blob.get("foreign_keys", [])
        ),
    )


def save_database(db: Database, directory: str) -> None:
    """Persist every table of ``db`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "name": db.name,
        "tables": [_schema_to_json(t.schema) for t in db.tables()],
    }
    with open(os.path.join(directory, "_schema.json"), "w") as fh:
        json.dump(manifest, fh, indent=2)
    for table in db.tables():
        write_table_csv(table, os.path.join(directory, f"{table.schema.name}.csv"))


def load_database(directory: str) -> Database:
    """Load a database previously written by :func:`save_database`."""
    with open(os.path.join(directory, "_schema.json")) as fh:
        manifest = json.load(fh)
    db = Database(manifest.get("name", "db"))
    # two passes so FK targets exist before FK owners are validated
    schemas = [_schema_from_json(blob) for blob in manifest["tables"]]
    for schema in schemas:
        db.add_table(Table(schema))
    for schema in schemas:
        path = os.path.join(directory, f"{schema.name}.csv")
        loaded = read_table_csv(schema, path)
        target = db.table(schema.name)
        target.insert_many(loaded.rows())
    return db
