"""CSV import/export for tables and whole databases.

The paper's study ships de-identified CSV extracts of the CareWeb tables;
this module provides the equivalent interchange format so users can load
their own access logs and event tables into the auditing system, and so
the synthetic generator can persist datasets for repeated experiments.

Layout of a database directory::

    mydb/
      _schema.json          # table definitions (names, types, keys)
      Log.csv
      Appointments.csv
      ...
"""

from __future__ import annotations

import csv
import json
import os

from .database import Database
from .errors import SchemaError
from .schema import Column, ColumnType, ForeignKey, TableSchema
from .table import Table


def write_table_csv(table: Table, path: str) -> int:
    """Write one table to ``path``; returns the number of rows written."""
    schema = table.schema
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(schema.column_names)
        for row in table.rows():
            writer.writerow(
                [col.ctype.render(v) for col, v in zip(schema.columns, row)]
            )
    return len(table)


def iter_table_csv(schema: TableSchema, path: str):
    """Stream a CSV (with header) as parsed row lists, one at a time.

    This is the allocation-light path the SQLite opener uses to ingest a
    log bigger than RAM: rows are parsed and yielded without ever
    building a :class:`Table`.  Validation is the consumer's job.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return
        if tuple(header) != schema.column_names:
            raise SchemaError(
                f"CSV header {header} does not match schema "
                f"{list(schema.column_names)} for table {schema.name!r}"
            )
        for raw in reader:
            yield [col.ctype.parse(cell) for col, cell in zip(schema.columns, raw)]


def read_table_csv(
    schema: TableSchema, path: str, *, max_rows: int | None = None
) -> Table:
    """Load a CSV (with header) into a new table conforming to ``schema``.

    ``max_rows`` caps the table (see :class:`Table`); exceeding it raises
    :class:`~repro.db.errors.CapacityError` mid-load.
    """
    table = Table(schema, max_rows=max_rows)
    for values in iter_table_csv(schema, path):
        table.insert(values)
    return table


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.ctype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {"column": fk.column, "ref_table": fk.ref_table, "ref_column": fk.ref_column}
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_json(blob: dict) -> TableSchema:
    return TableSchema(
        name=blob["name"],
        columns=tuple(
            Column(c["name"], ColumnType(c["type"]), c.get("nullable", True))
            for c in blob["columns"]
        ),
        primary_key=tuple(blob.get("primary_key", [])),
        foreign_keys=tuple(
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in blob.get("foreign_keys", [])
        ),
    )


def save_database(db: Database, directory: str) -> None:
    """Persist every table of ``db`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "name": db.name,
        "tables": [_schema_to_json(t.schema) for t in db.tables()],
    }
    with open(os.path.join(directory, "_schema.json"), "w") as fh:
        json.dump(manifest, fh, indent=2)
    for table in db.tables():
        write_table_csv(table, os.path.join(directory, f"{table.schema.name}.csv"))


def read_manifest(directory: str) -> tuple[str, list[TableSchema]]:
    """The database name and table schemas of a saved database directory."""
    with open(os.path.join(directory, "_schema.json")) as fh:
        manifest = json.load(fh)
    name = manifest.get("name", "db")
    return name, [_schema_from_json(blob) for blob in manifest["tables"]]


def load_database(directory: str, *, max_rows: int | None = None) -> Database:
    """Load a database previously written by :func:`save_database`.

    ``max_rows`` caps every table (the in-memory backend's explicit RAM
    ceiling — the CLI's ``--max-table-rows``); a directory whose log
    exceeds it raises :class:`~repro.db.errors.CapacityError` and should
    be audited with ``--backend sqlite`` instead.
    """
    name, schemas = read_manifest(directory)
    db = Database(name)
    # two passes so FK targets exist before FK owners are validated
    for schema in schemas:
        db.add_table(Table(schema, max_rows=max_rows))
    for schema in schemas:
        path = os.path.join(directory, f"{schema.name}.csv")
        target = db.table(schema.name)
        for values in iter_table_csv(schema, path):
            target.insert(values)
    return db
