"""The database catalog: a named collection of tables.

Mirrors the substrate the paper runs on (a PostgreSQL schema holding the
access log plus the clinical event tables), reduced to the operations the
explanation-auditing system actually needs: create/drop/list tables,
foreign-key introspection (feeding the schema graph), and referential
validation for the synthetic data generator's self-checks.
"""

from __future__ import annotations

from collections.abc import Iterator

from .errors import SchemaError, UnknownTableError
from .schema import ForeignKey, TableSchema
from .table import Table


class Database:
    """A named collection of :class:`Table` objects."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # catalog operations
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table; errors if the name is taken or a declared
        foreign key references a table that is not in the catalog yet."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"table {schema.name!r} declares FK to missing table "
                    f"{fk.ref_table!r}"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def add_table(self, table: Table) -> None:
        """Register an existing :class:`Table` (used by CSV loading)."""
        if table.schema.name in self._tables:
            raise SchemaError(f"table {table.schema.name!r} already exists")
        self._tables[table.schema.name] = table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name in self._tables

    def table(self, name: str) -> Table:
        """Look up a table by name (raises :class:`UnknownTableError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def table_names(self) -> list[str]:
        """Names of all catalog tables, in creation order."""
        return list(self._tables)

    def tables(self) -> Iterator[Table]:
        """Iterate over all tables."""
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def close(self) -> None:
        """Release backing resources — a no-op for the in-memory catalog,
        present so both backends share one lifecycle surface (the SQLite
        :class:`~repro.db.sqlbackend.SqlDatabase` closes its driver)."""

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------
    def foreign_keys(self) -> list[tuple[str, ForeignKey]]:
        """All declared FKs as ``(owning_table, fk)`` pairs."""
        out: list[tuple[str, ForeignKey]] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                out.append((table.schema.name, fk))
        return out

    def validate_referential_integrity(self) -> list[str]:
        """Check every FK value appears in the referenced column.

        Returns a list of human-readable violation descriptions (empty when
        the database is consistent).  The synthetic generator uses this as a
        self-check; it is also handy when loading external CSV data.
        """
        violations: list[str] = []
        for owner, fk in self.foreign_keys():
            if fk.ref_table not in self._tables:
                violations.append(f"{owner}.{fk.column}: missing table {fk.ref_table}")
                continue
            ref_values = self._tables[fk.ref_table].distinct_values(fk.ref_column)
            col_idx = self._tables[owner].schema.column_index(fk.column)
            for row in self._tables[owner].rows():
                value = row[col_idx]
                if value is not None and value not in ref_values:
                    violations.append(
                        f"{owner}.{fk.column}={value!r} not found in "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )
        return violations

    def total_rows(self) -> int:
        """Sum of row counts across every table."""
        return sum(len(t) for t in self._tables.values())

    def summary(self) -> str:
        """One line per table: name and row count."""
        lines = [f"database {self.name!r}: {len(self._tables)} tables"]
        for name, table in sorted(self._tables.items()):
            lines.append(f"  {name:<16} {len(table):>8} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Database {self.name!r} tables={len(self._tables)}>"
