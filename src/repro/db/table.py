"""Row storage with lazy hash indexes and distinct projections.

A :class:`Table` stores rows as plain tuples in insertion order.  Two access
structures matter for the auditing workload:

* **hash indexes** (``value -> [row positions]``) on single columns, built
  lazily the first time a column is used as a join key; and
* **distinct projections** (``set of value tuples``), which implement the
  paper's *Reducing Result Multiplicity* optimization (Section 3.2.1): the
  support of a path only needs the distinct combinations of the attributes
  the path touches, so each tuple variable is reduced to a deduplicated
  projection before joining.

Both structures are cached and invalidated on mutation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from .errors import IntegrityError, UnknownColumnError
from .schema import TableSchema


class Table:
    """A mutable, in-memory relation conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}
        self._distinct_cache: dict[tuple[str, ...], set[tuple]] = {}
        self._ndv_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row, given positionally or as a column->value mapping.

        Raises :class:`IntegrityError` on arity, type, or nullability
        violations.
        """
        if isinstance(row, Mapping):
            values = []
            for col in self.schema.columns:
                if col.name in row:
                    values.append(row[col.name])
                else:
                    values.append(None)
            extra = set(row) - set(self.schema.column_names)
            if extra:
                raise UnknownColumnError(self.schema.name, sorted(extra)[0])
            tup = tuple(values)
        else:
            tup = tuple(row)
            if len(tup) != self.schema.arity():
                raise IntegrityError(
                    f"table {self.schema.name!r} expects {self.schema.arity()} "
                    f"values, got {len(tup)}"
                )
        for col, value in zip(self.schema.columns, tup):
            if value is None and not col.nullable:
                raise IntegrityError(
                    f"column {self.schema.name}.{col.name} is NOT NULL"
                )
            if not col.ctype.validate(value):
                raise IntegrityError(
                    f"column {self.schema.name}.{col.name} expects "
                    f"{col.ctype.value}, got {type(value).__name__}: {value!r}"
                )
        self._rows.append(tup)
        self._invalidate()

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def clear(self) -> None:
        """Remove all rows."""
        self._rows.clear()
        self._invalidate()

    def _invalidate(self) -> None:
        self._indexes.clear()
        self._distinct_cache.clear()
        self._ndv_cache.clear()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def rows(self) -> list[tuple]:
        """All rows (the live list; treat as read-only)."""
        return self._rows

    def row(self, position: int) -> tuple:
        """The row tuple at a storage position."""
        return self._rows[position]

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in row order."""
        idx = self.schema.column_index(column)
        return [r[idx] for r in self._rows]

    def distinct_values(self, column: str) -> set:
        """Distinct values of one column (NULLs excluded)."""
        return {t[0] for t in self.project_distinct((column,)) if t[0] is not None}

    def ndv(self, column: str) -> int:
        """Number of distinct non-NULL values; cached (optimizer statistic)."""
        if column not in self._ndv_cache:
            self._ndv_cache[column] = len(self.distinct_values(column))
        return self._ndv_cache[column]

    def index_for(self, column: str) -> dict[Any, list[int]]:
        """Hash index ``value -> [row positions]``, built lazily and cached."""
        if column not in self._indexes:
            idx = self.schema.column_index(column)
            mapping: dict[Any, list[int]] = {}
            for pos, row in enumerate(self._rows):
                mapping.setdefault(row[idx], []).append(pos)
            self._indexes[column] = mapping
        return self._indexes[column]

    def project_distinct(self, columns: Sequence[str]) -> set[tuple]:
        """Distinct combinations of ``columns``, cached.

        This is the engine-level realization of the paper's multiplicity
        reduction: ``SELECT DISTINCT a, b FROM T`` evaluated once and
        reused across all candidate paths that touch the same attributes.
        """
        key = tuple(columns)
        if key not in self._distinct_cache:
            idxs = [self.schema.column_index(c) for c in columns]
            self._distinct_cache[key] = {
                tuple(row[i] for i in idxs) for row in self._rows
            }
        return self._distinct_cache[key]

    def lookup(self, column: str, value: Any) -> list[tuple]:
        """Rows where ``column == value`` (via the hash index)."""
        return [self._rows[p] for p in self.index_for(column).get(value, ())]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self.schema.name} rows={len(self._rows)}>"
