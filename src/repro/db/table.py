"""Row storage with delta-maintained hash indexes and distinct projections.

A :class:`Table` stores rows as plain tuples in insertion order.  Four
access structures matter for the auditing workload:

* **column arrays** (``column -> [values in row order]``), a columnar
  mirror of the row store built lazily per column; bulk projections and
  index builds read a few flat lists instead of touching every row tuple,
  which is what the set-at-a-time (batch semijoin) evaluation path wants;
* **hash indexes** (``value -> [row positions]``) on single columns, built
  lazily the first time a column is used as a join key or point-predicate
  probe;
* **distinct projections** (``set of value tuples``), which implement the
  paper's *Reducing Result Multiplicity* optimization (Section 3.2.1): the
  support of a path only needs the distinct combinations of the attributes
  the path touches, so each tuple variable is reduced to a deduplicated
  projection before joining; and
* **projection indexes** (``join-key tuple -> [distinct projected
  tuples]``), hash indexes *over* a distinct projection, which let the
  executor run index-nested-loop joins when the probe side is tiny (the
  streaming per-access point queries).

Hash and projection indexes also expose **batch probe APIs**
(:meth:`probe_many`, :meth:`lookup_many`, :meth:`projection_probe_many`)
so the executor can resolve a whole set of binding values in one call —
the storage-level primitive behind batch semijoin evaluation.

Delta maintenance contract
--------------------------
All three structures are built lazily and then **maintained in place** on
append: :meth:`insert` patches every already-built index, distinct
projection, NDV statistic, and projection index with just the new row
(O(#cached structures) per append), so a streaming workload never pays a
rebuild.  Full invalidation happens only on destructive operations —
:meth:`clear` — which drop every cached structure.  The invariants are
exercised by ``tests/test_property_incremental.py``, which checks that a
delta-maintained table is indistinguishable from a freshly rebuilt one
after arbitrary interleavings of inserts and reads.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from .errors import CapacityError, IntegrityError, UnknownColumnError
from .schema import ColumnType, TableSchema

#: Sentinel for "no typed mirror possible" in the int-array cache, so a
#: column that once saw a NULL/overflow is not re-scanned on every call.
_NO_TYPED_MIRROR = object()


def coerce_row(schema: TableSchema, row: Sequence[Any] | Mapping[str, Any]) -> tuple:
    """Normalize a positional or mapping row to a schema-ordered tuple.

    Mapping rows fill absent columns with ``None`` and reject unknown
    keys; positional rows must match the schema arity exactly.  Shared
    by the in-memory :class:`Table` and the SQL-backed table so both
    backends reject malformed rows with identical errors.
    """
    if isinstance(row, Mapping):
        values = []
        for col in schema.columns:
            if col.name in row:
                values.append(row[col.name])
            else:
                values.append(None)
        extra = set(row) - set(schema.column_names)
        if extra:
            raise UnknownColumnError(schema.name, sorted(extra)[0])
        return tuple(values)
    tup = tuple(row)
    if len(tup) != schema.arity():
        raise IntegrityError(
            f"table {schema.name!r} expects {schema.arity()} values, got {len(tup)}"
        )
    return tup


def validate_row(schema: TableSchema, tup: tuple) -> None:
    """Check one schema-ordered tuple against type/nullability constraints.

    Raises :class:`IntegrityError` with the same messages regardless of
    which storage backend the row is headed for — constraint checking
    stays in the Python tier so SQLite (with its lax column affinity)
    cannot accept a row the in-memory engine would reject.
    """
    for col, value in zip(schema.columns, tup):
        if value is None and not col.nullable:
            raise IntegrityError(f"column {schema.name}.{col.name} is NOT NULL")
        if not col.ctype.validate(value):
            raise IntegrityError(
                f"column {schema.name}.{col.name} expects "
                f"{col.ctype.value}, got {type(value).__name__}: {value!r}"
            )


class Table:
    """A mutable, in-memory relation conforming to a :class:`TableSchema`.

    ``max_rows`` (keyword-only) caps the table's size: an insert that
    would exceed it raises :class:`CapacityError`.  The audit CLI uses
    this to make the in-memory backend's RAM ceiling explicit — logs
    beyond the cap must be audited via the SQLite backend.
    """

    def __init__(self, schema: TableSchema, *, max_rows: int | None = None) -> None:
        self.schema = schema
        self.max_rows = max_rows
        self._rows: list[tuple] = []
        #: column -> [values in row order] (the columnar mirror)
        self._column_store: dict[str, list[Any]] = {}
        self._indexes: dict[str, dict[Any, list[int]]] = {}
        self._distinct_cache: dict[tuple[str, ...], set[tuple]] = {}
        self._ndv_cache: dict[str, int] = {}
        #: (attrs, key_attrs) -> {key tuple -> [distinct projected tuples]}
        self._proj_index_cache: dict[
            tuple[tuple[str, ...], tuple[str, ...]], dict[tuple, list[tuple]]
        ] = {}
        #: (attrs, key_attr) -> {scalar key -> [distinct projected tuples]}
        #: — the single-key-column variant of the projection index, keyed
        #: by the bare value instead of a 1-tuple so the vectorized probe
        #: path never allocates per-row key tuples.
        self._proj_scalar_cache: dict[
            tuple[tuple[str, ...], str], dict[Any, list[tuple]]
        ] = {}
        #: column -> array('q') mirror, or _NO_TYPED_MIRROR when the
        #: column is not cleanly int-typed (NULLs, non-INT type, overflow).
        self._int_arrays: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row, given positionally or as a column->value mapping.

        Raises :class:`IntegrityError` on arity, type, or nullability
        violations.  All cached access structures are delta-maintained in
        place; nothing is invalidated.
        """
        tup = self._coerce(row)
        self._validate(tup)
        if self.max_rows is not None and len(self._rows) >= self.max_rows:
            raise CapacityError(
                f"table {self.schema.name!r} is capped at {self.max_rows} rows; "
                "audit larger logs with the SQLite backend (--backend sqlite)"
            )
        pos = len(self._rows)
        self._rows.append(tup)
        self._apply_insert(pos, tup)

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted.

        Rows are validated and applied in order; on a validation error the
        rows inserted so far remain (same semantics as repeated
        :meth:`insert`).
        """
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def clear(self) -> None:
        """Remove all rows (destructive: drops every cached structure)."""
        self._rows.clear()
        self._invalidate()

    def invalidate_caches(self) -> None:
        """Drop every lazily built structure; rows are untouched.

        Never needed after :meth:`insert`/:meth:`insert_many` (those
        delta-maintain in place) — this exists for callers that mutate
        rows out-of-band and for the invalidate-everything baseline in
        the streaming benchmark."""
        self._invalidate()

    def _coerce(self, row: Sequence[Any] | Mapping[str, Any]) -> tuple:
        return coerce_row(self.schema, row)

    def _validate(self, tup: tuple) -> None:
        validate_row(self.schema, tup)

    def _apply_insert(self, pos: int, tup: tuple) -> None:
        """Patch every cached structure with one appended row (delta insert)."""
        col_idx = self.schema.column_index
        for column, values in self._column_store.items():
            values.append(tup[col_idx(column)])
        for column, mapping in self._indexes.items():
            mapping.setdefault(tup[col_idx(column)], []).append(pos)
        # Distinct projections first, recording which projected tuples are
        # new — NDV stats and projection indexes key off that novelty.
        fresh: dict[tuple[str, ...], bool] = {}
        proj_of: dict[tuple[str, ...], tuple] = {}
        for key, cache in self._distinct_cache.items():
            proj = tuple(tup[col_idx(c)] for c in key)
            proj_of[key] = proj
            if proj in cache:
                fresh[key] = False
            else:
                cache.add(proj)
                fresh[key] = True
        for column in list(self._ndv_cache):
            key = (column,)
            if key in fresh:
                if fresh[key] and proj_of[key][0] is not None:
                    self._ndv_cache[column] += 1
            else:
                # No maintained single-column projection to consult (cannot
                # happen via ndv(), which warms it); rebuild on next read.
                del self._ndv_cache[column]
        for (attrs, key_attrs), index in self._proj_index_cache.items():
            if attrs in fresh:
                if not fresh[attrs]:
                    continue  # projection already present: index row exists
                proj = proj_of[attrs]
            else:  # defensive: projection cache was never built
                proj = tuple(tup[col_idx(c)] for c in attrs)
            attr_pos = {a: i for i, a in enumerate(attrs)}
            key = tuple(proj[attr_pos[a]] for a in key_attrs)
            if any(k is None for k in key):
                continue  # NULL never joins
            index.setdefault(key, []).append(proj)
        for (attrs, key_attr), index in self._proj_scalar_cache.items():
            if attrs in fresh:
                if not fresh[attrs]:
                    continue
                proj = proj_of[attrs]
            else:
                proj = tuple(tup[col_idx(c)] for c in attrs)
            key = proj[attrs.index(key_attr)]
            if key is None:
                continue  # NULL never joins
            index.setdefault(key, []).append(proj)
        for column, arr in self._int_arrays.items():
            if arr is _NO_TYPED_MIRROR:
                continue
            value = tup[col_idx(column)]
            try:
                arr.append(value)
            except (TypeError, OverflowError):
                # A NULL (or out-of-range) value arrived: the typed
                # mirror can no longer represent the column; tombstone it.
                self._int_arrays[column] = _NO_TYPED_MIRROR

    def _invalidate(self) -> None:
        self._column_store.clear()
        self._indexes.clear()
        self._distinct_cache.clear()
        self._ndv_cache.clear()
        self._proj_index_cache.clear()
        self._proj_scalar_cache.clear()
        self._int_arrays.clear()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def rows(self) -> list[tuple]:
        """All rows (the live list; treat as read-only)."""
        return self._rows

    def row(self, position: int) -> tuple:
        """The row tuple at a storage position."""
        return self._rows[position]

    def column_array(self, column: str) -> list[Any]:
        """One column's values in row order (the live columnar array).

        Built lazily on first access, then delta-maintained: every
        :meth:`insert` appends the new value in place.  Treat as
        read-only — it is the cached columnar mirror of the row store.
        """
        if column not in self._column_store:
            idx = self.schema.column_index(column)
            self._column_store[column] = [r[idx] for r in self._rows]
        return self._column_store[column]

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in row order (a fresh copy)."""
        return list(self.column_array(column))

    def int_column_array(self, column: str) -> array | None:
        """A typed ``array('q')`` mirror of an INT column, or None.

        Available only while the column is declared INT and every stored
        value fits a signed 64-bit slot with no NULLs — the moment a NULL
        (or overflowing) value is appended the mirror is dropped for good
        (callers fall back to :meth:`column_array`).  Delta-maintained on
        append like every other cached structure; treat as read-only.
        The contiguous buffer also supports zero-copy ``memoryview``
        slicing for consumers that want it.
        """
        cached = self._int_arrays.get(column)
        if cached is None:  # never built
            col = self.schema.columns[self.schema.column_index(column)]
            if col.ctype is not ColumnType.INT:
                cached = _NO_TYPED_MIRROR
            else:
                try:
                    cached = array("q", self.column_array(column))
                except (TypeError, OverflowError):
                    cached = _NO_TYPED_MIRROR
            self._int_arrays[column] = cached
        return None if cached is _NO_TYPED_MIRROR else cached

    def distinct_values(self, column: str) -> set:
        """Distinct values of one column (NULLs excluded)."""
        return {t[0] for t in self.project_distinct((column,)) if t[0] is not None}

    def ndv(self, column: str) -> int:
        """Number of distinct non-NULL values; cached (optimizer statistic)."""
        if column not in self._ndv_cache:
            self._ndv_cache[column] = len(self.distinct_values(column))
        return self._ndv_cache[column]

    def index_for(self, column: str) -> dict[Any, list[int]]:
        """Hash index ``value -> [row positions]``, built lazily and cached."""
        if column not in self._indexes:
            mapping: dict[Any, list[int]] = {}
            for pos, value in enumerate(self.column_array(column)):
                mapping.setdefault(value, []).append(pos)
            self._indexes[column] = mapping
        return self._indexes[column]

    def project_distinct(self, columns: Sequence[str]) -> set[tuple]:
        """Distinct combinations of ``columns``, cached.

        This is the engine-level realization of the paper's multiplicity
        reduction: ``SELECT DISTINCT a, b FROM T`` evaluated once, reused
        across all candidate paths that touch the same attributes, and
        delta-maintained across appends.
        """
        key = tuple(columns)
        if key not in self._distinct_cache:
            arrays = [self.column_array(c) for c in key]
            self._distinct_cache[key] = set(zip(*arrays)) if arrays else set()
        return self._distinct_cache[key]

    def projection_index(
        self, attrs: Sequence[str], key_attrs: Sequence[str]
    ) -> dict[tuple, list[tuple]]:
        """Hash index over ``project_distinct(attrs)`` keyed by ``key_attrs``.

        Maps each non-NULL combination of the key attributes to the list of
        distinct projected tuples carrying it.  The executor probes this for
        index-nested-loop joins when the other side of a join is tiny (e.g.
        a single log row selected by a point predicate), so a per-access
        explanation query touches O(matches) rows instead of hashing the
        whole relation.  Built lazily; delta-maintained on append.
        """
        cache_key = (tuple(attrs), tuple(key_attrs))
        if cache_key not in self._proj_index_cache:
            attr_pos = {a: i for i, a in enumerate(cache_key[0])}
            key_pos = [attr_pos[a] for a in cache_key[1]]
            index: dict[tuple, list[tuple]] = {}
            for proj in self.project_distinct(attrs):
                key = tuple(proj[p] for p in key_pos)
                if any(k is None for k in key):
                    continue  # NULL never joins
                index.setdefault(key, []).append(proj)
            self._proj_index_cache[cache_key] = index
        return self._proj_index_cache[cache_key]

    def projection_index_scalar(
        self, attrs: Sequence[str], key_attr: str
    ) -> dict[Any, list[tuple]]:
        """:meth:`projection_index` specialized to a single key column.

        Maps each non-NULL *bare value* of ``key_attr`` (no 1-tuple
        wrapping) to the distinct projected tuples carrying it, so the
        vectorized semijoin probe hashes scalars instead of allocating a
        key tuple per probe row.  Built lazily; delta-maintained on
        append exactly like the tuple-keyed variant.
        """
        cache_key = (tuple(attrs), key_attr)
        if cache_key not in self._proj_scalar_cache:
            pos = cache_key[0].index(key_attr)
            index: dict[Any, list[tuple]] = {}
            for proj in self.project_distinct(attrs):
                key = proj[pos]
                if key is None:
                    continue  # NULL never joins
                index.setdefault(key, []).append(proj)
            self._proj_scalar_cache[cache_key] = index
        return self._proj_scalar_cache[cache_key]

    def lookup(self, column: str, value: Any) -> list[tuple]:
        """Rows where ``column == value`` (via the hash index)."""
        return [self._rows[p] for p in self.index_for(column).get(value, ())]

    # ------------------------------------------------------------------
    # batch probes (the storage primitive behind semijoin evaluation)
    # ------------------------------------------------------------------
    def probe_many(
        self, column: str, values: Iterable[Any], *, vectorized: bool = True
    ) -> dict[Any, list[int]]:
        """Batch hash-index probe: ``value -> [row positions]`` for every
        probe value that matches at least one row.

        NULL probe values are skipped (SQL semantics: NULL never joins).
        The vectorized path resolves the whole batch with one C-level
        keys-view set intersection against the hash index (NULL discarded
        afterwards — the index does carry a NULL bucket) instead of one
        dict probe per value; ``vectorized=False`` keeps the original
        per-value loop as the differential reference.
        """
        index = self.index_for(column)
        if not vectorized:
            out: dict[Any, list[int]] = {}
            for value in values:
                if value is None:
                    continue
                positions = index.get(value)
                if positions:
                    out[value] = positions
            return out
        if isinstance(values, (set, frozenset)):
            hits = index.keys() & values
            hits.discard(None)
            return {v: index[v] for v in hits}
        ordered = dict.fromkeys(values)  # dedup, first-seen order kept
        hits = index.keys() & ordered
        hits.discard(None)
        return {v: index[v] for v in ordered if v in hits}

    def lookup_many(
        self, column: str, values: Iterable[Any], *, vectorized: bool = True
    ) -> list[tuple]:
        """Rows where ``column`` matches any probe value (full multiplicity,
        grouped by probe value; NULLs never match)."""
        rows = self._rows
        probed = self.probe_many(column, values, vectorized=vectorized)
        return [rows[p] for positions in probed.values() for p in positions]

    def projection_probe_many(
        self,
        attrs: Sequence[str],
        key_attrs: Sequence[str],
        keys: Iterable[tuple],
        *,
        vectorized: bool = True,
    ) -> dict[tuple, list[tuple]]:
        """Batch probe of :meth:`projection_index`: ``key tuple -> [distinct
        projected tuples]`` for every probe key with at least one match.

        Keys containing NULL are skipped (NULL never joins).  The
        vectorized path is one keys-view set intersection — no per-key
        NULL scan is needed because the projection index never contains a
        NULL-bearing key, so such probes simply cannot intersect.
        ``vectorized=False`` keeps the original per-key loop.
        """
        index = self.projection_index(attrs, key_attrs)
        if not vectorized:
            out: dict[tuple, list[tuple]] = {}
            for key in keys:
                if any(k is None for k in key):
                    continue
                entries = index.get(key)
                if entries:
                    out[key] = entries
            return out
        if isinstance(keys, (set, frozenset)):
            return {k: index[k] for k in index.keys() & keys}
        ordered = dict.fromkeys(keys)
        hits = index.keys() & ordered
        return {k: index[k] for k in ordered if k in hits}

    def projection_probe_scalar(
        self, attrs: Sequence[str], key_attr: str, values: Iterable[Any]
    ) -> dict[Any, list[tuple]]:
        """Batch probe of :meth:`projection_index_scalar`: ``value ->
        [distinct projected tuples]`` for every probe value with a match.

        The scalar twin of :meth:`projection_probe_many` — bare values in,
        bare-value keys out, one set intersection for the whole batch.
        NULL probe values never match (the scalar index has no NULL key).
        """
        index = self.projection_index_scalar(attrs, key_attr)
        if not isinstance(values, (set, frozenset)):
            values = set(values)
        return {v: index[v] for v in index.keys() & values}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self.schema.name} rows={len(self._rows)}>"
