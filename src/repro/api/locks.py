"""A readers-writer lock for the :class:`~repro.api.service.AuditService`.

The audit workload is read-heavy: many concurrent ``explain``/``report``
calls against delta-maintained state, punctuated by occasional writers
(``ingest``, ``mine``, template registration).  A plain mutex would
serialize the reads; this lock lets any number of readers share the
service while writers get exclusive access.

Policy: **writer-preferring**.  New readers block while a writer is
waiting, so a steady stream of ``explain`` calls cannot starve an
``ingest``.  The lock is not reentrant — the service never nests public
calls, and keeping it non-reentrant keeps the invariant auditable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections.abc import Iterator


class RWLock:
    """Writer-preferring readers-writer lock (non-reentrant)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: Lifetime acquisition counters (surfaced by AuditService.stats()).
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter shared."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
            self.read_acquisitions += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is free, then enter exclusive."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared (reader) critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive (writer) section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def stats(self) -> dict:
        """Lifetime acquisition counters."""
        return {
            "read_acquisitions": self.read_acquisitions,
            "write_acquisitions": self.write_acquisitions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RWLock readers={self._active_readers} "
            f"writer={self._writer_active} waiting={self._writers_waiting}>"
        )
