"""A readers-writer lock for the :class:`~repro.api.service.AuditService`.

The audit workload is read-heavy: many concurrent ``explain``/``report``
calls against delta-maintained state, punctuated by occasional writers
(``ingest``, ``mine``, template registration).  A plain mutex would
serialize the reads; this lock lets any number of readers share the
service while writers get exclusive access.

Policy: **writer-preferring**.  New readers block while a writer is
waiting, so a steady stream of ``explain`` calls cannot starve an
``ingest``.  The lock is not reentrant — the service never nests public
calls, and keeping it non-reentrant keeps the invariant auditable.

**Sanitizer.**  With ``REPRO_SANITIZE=1`` every acquisition is checked
against a per-thread held-lock table and the discipline violations that
would otherwise manifest as hangs (or as silently-corrupted children
after ``fork``) raise :class:`LockSanitizerError` immediately instead:
reentrant read/write acquisition, read-after-write, read→write upgrade
attempts, and ``fork()`` while the forking thread holds any RWLock.
This is the dynamic twin of the static RL006 lint rule — CI runs the
full test suite once with the sanitizer on.  The env var is read at
acquisition time, so a test can flip it with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from collections.abc import Iterator


class LockSanitizerError(RuntimeError):
    """A lock-discipline violation caught by the REPRO_SANITIZE runtime."""


#: Per-thread sanitizer bookkeeping: ``id(lock) -> "read" | "write"``.
_held = threading.local()
_fork_guard_installed = False


def _sanitize_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE") == "1"


def _held_map() -> dict[int, str]:
    table: dict[int, str] | None = getattr(_held, "locks", None)
    if table is None:
        table = _held.locks = {}
    return table


def held_locks_in_thread() -> dict[int, str]:
    """``id(lock) -> mode`` for every RWLock the current thread holds.

    Populated only while ``REPRO_SANITIZE=1``; the leak-check test
    fixture asserts this is empty after every test.
    """
    return dict(_held_map())


#: fork-while-held violations, drained by :func:`consume_fork_violations`.
_fork_violations: list[str] = []


def _check_fork_while_held() -> None:
    if _sanitize_enabled() and _held_map():
        modes = "/".join(sorted(_held_map().values()))
        _fork_violations.append(
            f"fork() while this thread holds an RWLock ({modes}) — the "
            "child inherits the lock in an undefined state and can never "
            "release it"
        )


def consume_fork_violations() -> list[str]:
    """Drain the fork-while-held violations the at-fork guard recorded.

    CPython reports exceptions from ``os.register_at_fork`` callbacks as
    *unraisable* and forks anyway, so the guard cannot stop the fork —
    it records, and the test-suite fixture turns any record into a
    :class:`LockSanitizerError` at the end of the offending test.
    """
    out = list(_fork_violations)
    _fork_violations.clear()
    return out


def _install_fork_guard() -> None:
    global _fork_guard_installed
    if not _fork_guard_installed and hasattr(os, "register_at_fork"):
        _fork_guard_installed = True
        os.register_at_fork(before=_check_fork_while_held)


_VIOLATIONS = {
    ("read", "read"): "reentrant read acquisition",
    ("read", "write"): "read->write upgrade attempt",
    ("write", "read"): "read acquisition while holding the write lock",
    ("write", "write"): "reentrant write acquisition",
}


class RWLock:
    """Writer-preferring readers-writer lock (non-reentrant)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: Lifetime acquisition counters (surfaced by AuditService.stats()).
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # ------------------------------------------------------------------
    def _sanitize_acquire(self, mode: str) -> None:
        """Raise (instead of deadlocking) on a discipline violation;
        record the hold *before* blocking so fork checks see it."""
        _install_fork_guard()
        held = _held_map().get(id(self))
        if held is not None:
            raise LockSanitizerError(
                f"{_VIOLATIONS[held, mode]} on {self!r} in thread "
                f"{threading.current_thread().name!r} — the RWLock is not "
                "reentrant; outside the sanitizer this self-deadlocks"
            )
        _held_map()[id(self)] = mode

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter shared."""
        if _sanitize_enabled():
            self._sanitize_acquire("read")
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
            self.read_acquisitions += 1

    def release_read(self) -> None:
        # unconditional discard: REPRO_SANITIZE may flip mid-hold
        _held_map().pop(id(self), None)
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is free, then enter exclusive."""
        if _sanitize_enabled():
            self._sanitize_acquire("write")
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1

    def release_write(self) -> None:
        _held_map().pop(id(self), None)
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared (reader) critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive (writer) section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def stats(self) -> dict:
        """Lifetime acquisition counters."""
        return {
            "read_acquisitions": self.read_acquisitions,
            "write_acquisitions": self.write_acquisitions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RWLock readers={self._active_readers} "
            f"writer={self._writer_active} waiting={self._writers_waiting}>"
        )
