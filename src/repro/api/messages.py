"""Typed requests and responses of the public audit API.

Every dataclass here is frozen and offers :meth:`to_dict`, producing
plain JSON-serializable structures (datetimes become ISO strings, sets
become sorted lists) — the contract a web tier can serve directly, and
what ``repro-audit --json`` prints — plus the exact inverse
:meth:`from_dict`, so ``from_dict(to_dict(x)) == x`` for every message
type and a client can rebuild the typed object from wire JSON.

The wire layer wraps each message in a versioned envelope::

    {"v": 1, "kind": "ExplainResult", "data": {...to_dict()...}}

via :func:`to_wire`/:func:`from_wire`; version or kind mismatches raise
the typed :class:`~repro.api.errors.WireFormatError` instead of
producing a half-parsed object.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any

from ..audit.streaming import StreamedAccess
from ..core.instance import ExplanationInstance
from ..core.library import TemplateLibrary
from ..core.mining import MiningResult
from .errors import WIRE_VERSION, WireFormatError

#: Mining algorithms :class:`MineRequest` accepts.
MINING_ALGORITHMS = ("one-way", "two-way", "bridge")


def jsonable(value: Any) -> Any:
    """Recursively convert a value into JSON-serializable primitives."""
    if isinstance(value, (dt.datetime, dt.date)):
        return value.isoformat()
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return value


def temporal(value: Any) -> Any:
    """Inverse of the temporal half of :func:`jsonable`: ISO-formatted
    strings come back as ``datetime``/``date`` objects (a bare
    ``YYYY-MM-DD`` is a date, anything with a time part a datetime);
    everything else passes through untouched.  A string that merely
    *looks* like a timestamp converts too — the wire format reserves ISO
    shapes for temporal values.
    """
    if isinstance(value, str):
        try:
            if len(value) == 10 and "T" not in value:
                return dt.date.fromisoformat(value)
            return dt.datetime.fromisoformat(value)
        except ValueError:
            return value
    return value


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplainRequest:
    """Explain one access: ``lid``, optionally capping the instances."""

    lid: Any
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.lid is None:
            raise ValueError("ExplainRequest requires a log id")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 when given")

    def to_dict(self) -> dict:
        return {"lid": jsonable(self.lid), "limit": self.limit}

    @classmethod
    def from_dict(cls, data: dict) -> "ExplainRequest":
        return cls(lid=data.get("lid"), limit=data.get("limit"))


@dataclass(frozen=True)
class ExplanationView:
    """One rendered explanation instance."""

    text: str
    path_length: int
    template: str | None
    bindings: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_instance(cls, instance: ExplanationInstance) -> "ExplanationView":
        return cls(
            text=instance.render(),
            path_length=instance.path_length,
            template=instance.template.name,
            bindings=dict(instance.bindings),
        )

    def to_dict(self) -> dict:
        return {
            "text": self.text,
            "path_length": self.path_length,
            "template": self.template,
            "bindings": jsonable(self.bindings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplanationView":
        return cls(
            text=data["text"],
            path_length=data["path_length"],
            template=data.get("template"),
            bindings={
                k: temporal(v) for k, v in (data.get("bindings") or {}).items()
            },
        )


@dataclass(frozen=True)
class ExplainResult:
    """The ranked explanations of one access (empty => suspicious)."""

    lid: Any
    explanations: tuple[ExplanationView, ...]

    @property
    def explained(self) -> bool:
        return bool(self.explanations)

    @property
    def suspicious(self) -> bool:
        """Unexplained accesses are candidate misuse (paper Section 1)."""
        return not self.explanations

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "explained": self.explained,
            "explanations": [e.to_dict() for e in self.explanations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplainResult":
        return cls(
            lid=temporal(data.get("lid")),
            explanations=tuple(
                ExplanationView.from_dict(e)
                for e in data.get("explanations") or ()
            ),
        )


# ----------------------------------------------------------------------
# patient report (the portal screen)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessView:
    """One access row of a patient's report."""

    lid: Any
    date: Any
    user: Any
    explanations: tuple[str, ...]

    @property
    def suspicious(self) -> bool:
        return not self.explanations

    def headline(self) -> str:
        if self.explanations:
            return self.explanations[0]
        return "No explanation found — you may report this access."

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "suspicious": self.suspicious,
            "explanations": list(self.explanations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessView":
        return cls(
            lid=temporal(data.get("lid")),
            date=temporal(data.get("date")),
            user=data.get("user"),
            explanations=tuple(data.get("explanations") or ()),
        )


@dataclass(frozen=True)
class PatientReport:
    """Every access to one patient's record, each with explanations."""

    patient: Any
    entries: tuple[AccessView, ...]

    def to_dict(self) -> dict:
        return {
            "patient": jsonable(self.patient),
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PatientReport":
        return cls(
            patient=data.get("patient"),
            entries=tuple(
                AccessView.from_dict(e) for e in data.get("entries") or ()
            ),
        )


# ----------------------------------------------------------------------
# ingest (streaming)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestResult:
    """The outcome of streaming one access into the audited log."""

    lid: Any
    date: Any
    user: Any
    patient: Any
    explanations: tuple[ExplanationView, ...]
    alerted: bool

    @classmethod
    def from_streamed(
        cls, access: StreamedAccess, alerted: bool
    ) -> "IngestResult":
        return cls(
            lid=access.lid,
            date=access.date,
            user=access.user,
            patient=access.patient,
            explanations=tuple(
                ExplanationView.from_instance(i) for i in access.instances
            ),
            alerted=alerted,
        )

    @property
    def explained(self) -> bool:
        return bool(self.explanations)

    @property
    def suspicious(self) -> bool:
        return not self.explanations

    def headline(self) -> str:
        """The top-ranked explanation, or a no-explanation marker."""
        if self.explanations:
            return self.explanations[0].text
        return "no explanation found"

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "patient": jsonable(self.patient),
            "explained": self.explained,
            "alerted": self.alerted,
            "explanations": [e.to_dict() for e in self.explanations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IngestResult":
        return cls(
            lid=temporal(data.get("lid")),
            date=temporal(data.get("date")),
            user=data.get("user"),
            patient=data.get("patient"),
            explanations=tuple(
                ExplanationView.from_dict(e)
                for e in data.get("explanations") or ()
            ),
            alerted=bool(data.get("alerted", False)),
        )


# ----------------------------------------------------------------------
# compliance report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnexplainedView:
    """One unexplained access awaiting compliance review."""

    lid: Any
    date: Any
    user: Any
    patient: Any

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "patient": jsonable(self.patient),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnexplainedView":
        return cls(
            lid=temporal(data.get("lid")),
            date=temporal(data.get("date")),
            user=data.get("user"),
            patient=data.get("patient"),
        )


@dataclass(frozen=True)
class AuditReport:
    """The compliance-office artifact: coverage plus the review queue."""

    total: int
    unexplained_count: int
    coverage: float
    queue: tuple[UnexplainedView, ...]
    user_risk: tuple[tuple[Any, int], ...]

    @property
    def explained_count(self) -> int:
        return self.total - self.unexplained_count

    def summary(self) -> str:
        """One-line coverage summary for the compliance dashboard."""
        return (
            f"{self.total} accesses; {self.explained_count} explained "
            f"({self.coverage:.1%}); {self.unexplained_count} in the "
            f"review queue"
        )

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "explained": self.explained_count,
            "unexplained": self.unexplained_count,
            "coverage": self.coverage,
            "queue": [e.to_dict() for e in self.queue],
            "user_risk": [
                {"user": jsonable(u), "unexplained": n} for u, n in self.user_risk
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditReport":
        return cls(
            total=data["total"],
            unexplained_count=data["unexplained"],
            coverage=data["coverage"],
            queue=tuple(
                UnexplainedView.from_dict(e) for e in data.get("queue") or ()
            ),
            user_risk=tuple(
                (entry["user"], entry["unexplained"])
                for entry in data.get("user_risk") or ()
            ),
        )


# ----------------------------------------------------------------------
# mining
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MineRequest:
    """Mine explanation templates from the service's database."""

    algorithm: str = "one-way"
    support_fraction: float = 0.01
    max_length: int = 4
    max_tables: int = 3
    bridge_length: int = 2
    #: When True, mined templates are registered with the engine so they
    #: immediately participate in explain/report.
    register: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in MINING_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {MINING_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if not 0 < self.support_fraction <= 1:
            raise ValueError("support_fraction must be in (0, 1]")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_tables < 1:
            raise ValueError("max_tables must be >= 1")
        if self.bridge_length < 1:
            raise ValueError("bridge_length must be >= 1")

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "support_fraction": self.support_fraction,
            "max_length": self.max_length,
            "max_tables": self.max_tables,
            "bridge_length": self.bridge_length,
            "register": self.register,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MineRequest":
        known = {
            "algorithm",
            "support_fraction",
            "max_length",
            "max_tables",
            "bridge_length",
            "register",
        }
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class MinedTemplateView:
    """One mined template: presentation fields plus the template object
    itself (excluded from ``to_dict``), so API consumers never reach into
    the raw mining result."""

    sql: str
    support: int
    length: int
    template: Any = field(repr=False, compare=False, default=None)

    def to_dict(self) -> dict:
        return {"sql": self.sql, "support": self.support, "length": self.length}

    @classmethod
    def from_dict(cls, data: dict) -> "MinedTemplateView":
        return cls(
            sql=data["sql"], support=data["support"], length=data["length"]
        )


@dataclass(frozen=True)
class MineResult:
    """A mining run's output, with the raw result attached."""

    algorithm: str
    threshold: float
    templates: tuple[MinedTemplateView, ...]
    support_stats: dict
    raw: MiningResult = field(repr=False, compare=False)

    def library(self) -> TemplateLibrary:
        """The mined templates as a reviewable library (all *suggested*),
        ready for :meth:`TemplateLibrary.dump`/``save``."""
        return TemplateLibrary.from_mining_result(self.raw)

    def explanation_templates(self) -> tuple:
        """The mined :class:`ExplanationTemplate` objects, mining order."""
        return tuple(v.template for v in self.templates)

    def templates_by_length(self) -> dict[int, tuple[MinedTemplateView, ...]]:
        """Mined templates grouped by join-path length."""
        out: dict[int, list[MinedTemplateView]] = {}
        for view in self.templates:
            out.setdefault(view.length, []).append(view)
        return {length: tuple(views) for length, views in out.items()}

    def signatures(self) -> set:
        """Condition-set signatures of every mined template (the
        algorithm-agreement identity)."""
        return {v.template.signature() for v in self.templates}

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "threshold": self.threshold,
            "templates": [t.to_dict() for t in self.templates],
            "support_stats": jsonable(self.support_stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MineResult":
        """Rebuild the presentation half from wire JSON.  ``raw`` (and the
        per-view template objects) cannot travel; the reconstructed result
        compares equal but :meth:`library`/:meth:`explanation_templates`
        are unavailable on it."""
        return cls(
            algorithm=data["algorithm"],
            threshold=data["threshold"],
            templates=tuple(
                MinedTemplateView.from_dict(t) for t in data.get("templates") or ()
            ),
            support_stats=dict(data.get("support_stats") or {}),
            raw=None,
        )


# ----------------------------------------------------------------------
# resumable scans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanState:
    """Suspended state of a resumable full-log scan.

    Deliberately compact — the ``(date, lid)`` position of the last
    classified row plus the partial coverage accumulators — so it rides
    an opaque wire cursor and any fresh service/server instance over the
    same log can resume the walk from it.
    """

    #: Resume position in the stable ``(date, lid)`` order; None means
    #: the scan has not started.
    after: tuple | None = None
    #: Log rows classified so far.
    seen: int = 0
    #: How many of them no template explained.
    unexplained: int = 0

    def __post_init__(self) -> None:
        if self.after is not None and (
            not isinstance(self.after, tuple) or len(self.after) != 2
        ):
            raise ValueError(
                f"after must be a (date, lid) pair, got {self.after!r}"
            )
        if self.seen < 0 or self.unexplained < 0:
            raise ValueError("seen and unexplained must be >= 0")
        if self.unexplained > self.seen:
            raise ValueError(
                f"unexplained ({self.unexplained}) cannot exceed "
                f"seen ({self.seen})"
            )

    def to_dict(self) -> dict:
        return {
            "after": None if self.after is None else jsonable(self.after),
            "seen": self.seen,
            "unexplained": self.unexplained,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanState":
        after = data.get("after")
        if after is not None:
            if not isinstance(after, (list, tuple)) or len(after) != 2:
                raise ValueError(
                    f"after must be a [date, lid] pair, got {after!r}"
                )
            after = tuple(temporal(v) for v in after)
        return cls(
            after=after,
            seen=int(data.get("seen", 0)),
            unexplained=int(data.get("unexplained", 0)),
        )


@dataclass(frozen=True)
class ScanRequest:
    """Ask for the next bounded slice of a resumable full-log scan.

    ``None`` budgets fall back to the service's ``AuditConfig``
    (``scan_page_rows`` / ``scan_quantum_seconds``); a ``None`` state
    starts a fresh scan.
    """

    state: ScanState | None = None
    page_rows: int | None = None
    quantum_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.page_rows is not None and self.page_rows < 1:
            raise ValueError(
                f"page_rows must be >= 1, got {self.page_rows}"
            )
        if self.quantum_seconds is not None and not self.quantum_seconds > 0:
            raise ValueError(
                f"quantum_seconds must be > 0, got {self.quantum_seconds}"
            )

    def to_dict(self) -> dict:
        return {
            "state": None if self.state is None else self.state.to_dict(),
            "page_rows": self.page_rows,
            "quantum_seconds": self.quantum_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanRequest":
        state = data.get("state")
        return cls(
            state=None if state is None else ScanState.from_dict(state),
            page_rows=data.get("page_rows"),
            quantum_seconds=data.get("quantum_seconds"),
        )


@dataclass(frozen=True)
class ScanPage:
    """One classified slice of a resumable scan plus the resume state.

    ``explained`` lists the lids this slice explained and
    ``unexplained`` the full review-queue views for the rest, both in
    scan order — so accumulating pages until ``done`` rebuilds the exact
    one-shot ``explain_all`` partition *and* ``report`` artifact (see
    :func:`assemble_partition` / :func:`assemble_report`).
    """

    rows: int
    explained: tuple
    unexplained: tuple[UnexplainedView, ...]
    state: ScanState
    done: bool

    def to_dict(self) -> dict:
        return {
            "rows": self.rows,
            "explained": [jsonable(lid) for lid in self.explained],
            "unexplained": [v.to_dict() for v in self.unexplained],
            "state": self.state.to_dict(),
            "done": self.done,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanPage":
        return cls(
            rows=data["rows"],
            explained=tuple(
                temporal(lid) for lid in data.get("explained") or ()
            ),
            unexplained=tuple(
                UnexplainedView.from_dict(v)
                for v in data.get("unexplained") or ()
            ),
            state=ScanState.from_dict(data["state"]),
            done=bool(data["done"]),
        )


def assemble_partition(pages: Any) -> "BatchExplanation":
    """Union a completed scan's pages back into the one-shot
    ``explain_all`` partition (:class:`~repro.core.engine.
    BatchExplanation`); slices are disjoint, so this is exact."""
    from ..core.engine import BatchExplanation

    explained: set = set()
    unexplained: set = set()
    last = None
    for page in pages:
        explained.update(page.explained)
        unexplained.update(v.lid for v in page.unexplained)
        last = page
    if last is not None and not last.done:
        raise ValueError("scan is incomplete: the final page has done=False")
    return BatchExplanation(frozenset(explained), frozenset(unexplained))


def assemble_report(pages: Any, limit: int | None = None) -> AuditReport:
    """Fold a completed scan's pages into the exact :class:`AuditReport`
    the monolithic ``report()`` call returns: same queue order, same
    coverage arithmetic, same ``(-count, str(user))`` risk ranking."""
    queue: list[UnexplainedView] = []
    last = None
    for page in pages:
        queue.extend(page.unexplained)
        last = page
    if last is not None and not last.done:
        raise ValueError("scan is incomplete: the final page has done=False")
    state = last.state if last is not None else ScanState()
    counts: dict[Any, int] = {}
    for view in queue:
        counts[view.user] = counts.get(view.user, 0) + 1
    total = state.seen
    coverage = 0.0 if total == 0 else (total - state.unexplained) / total
    if limit is not None:
        queue = queue[:limit]
    return AuditReport(
        total=total,
        unexplained_count=state.unexplained,
        coverage=coverage,
        queue=tuple(queue),
        user_risk=tuple(
            sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        ),
    )


# ----------------------------------------------------------------------
# versioned wire envelopes
# ----------------------------------------------------------------------
#: ``kind -> class`` registry of every wire-transportable message type.
WIRE_KINDS: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        AccessView,
        AuditReport,
        ExplainRequest,
        ExplainResult,
        ExplanationView,
        IngestResult,
        MineRequest,
        MineResult,
        MinedTemplateView,
        PatientReport,
        ScanPage,
        ScanRequest,
        ScanState,
        UnexplainedView,
    )
}


def to_wire(message: Any) -> dict:
    """Wrap a typed message in the versioned wire envelope::

        {"v": 1, "kind": "ExplainResult", "data": {...to_dict()...}}
    """
    kind = type(message).__name__
    if kind not in WIRE_KINDS:
        raise WireFormatError(f"{kind} is not a wire-transportable message")
    return {"v": WIRE_VERSION, "kind": kind, "data": message.to_dict()}


def from_wire(payload: Any, expected: str | None = None) -> Any:
    """Rebuild the typed message from a wire envelope.

    Raises :class:`~repro.api.errors.WireFormatError` on a non-dict
    payload, an unsupported version, an unknown kind, or — when
    ``expected`` is given — a kind other than the one the caller is
    prepared to handle.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"wire envelope must be an object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version!r} "
            f"(this build speaks v{WIRE_VERSION})"
        )
    kind = payload.get("kind")
    cls = WIRE_KINDS.get(kind)
    if cls is None:
        raise WireFormatError(f"unknown wire kind {kind!r}")
    if expected is not None and kind != expected:
        raise WireFormatError(f"expected a {expected} envelope, got {kind}")
    data = payload.get("data")
    if not isinstance(data, dict):
        raise WireFormatError(f"{kind} envelope carries no data object")
    try:
        return cls.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed {kind} data: {exc}") from exc


__all__ = [
    "AccessView",
    "AuditReport",
    "ExplainRequest",
    "ExplainResult",
    "ExplanationView",
    "IngestResult",
    "MINING_ALGORITHMS",
    "MineRequest",
    "MineResult",
    "MinedTemplateView",
    "PatientReport",
    "ScanPage",
    "ScanRequest",
    "ScanState",
    "UnexplainedView",
    "WIRE_KINDS",
    "WIRE_VERSION",
    "assemble_partition",
    "assemble_report",
    "from_wire",
    "jsonable",
    "temporal",
    "to_wire",
]
