"""Typed requests and responses of the public audit API.

Every response dataclass is frozen and offers :meth:`to_dict`, producing
plain JSON-serializable structures (datetimes become ISO strings, sets
become sorted lists) — the contract a web tier can serve directly, and
what ``repro-audit --json`` prints.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any

from ..audit.streaming import StreamedAccess
from ..core.instance import ExplanationInstance
from ..core.library import TemplateLibrary
from ..core.mining import MiningResult

#: Mining algorithms :class:`MineRequest` accepts.
MINING_ALGORITHMS = ("one-way", "two-way", "bridge")


def jsonable(value: Any) -> Any:
    """Recursively convert a value into JSON-serializable primitives."""
    if isinstance(value, (dt.datetime, dt.date)):
        return value.isoformat()
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplainRequest:
    """Explain one access: ``lid``, optionally capping the instances."""

    lid: Any
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.lid is None:
            raise ValueError("ExplainRequest requires a log id")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 when given")


@dataclass(frozen=True)
class ExplanationView:
    """One rendered explanation instance."""

    text: str
    path_length: int
    template: str | None
    bindings: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_instance(cls, instance: ExplanationInstance) -> "ExplanationView":
        return cls(
            text=instance.render(),
            path_length=instance.path_length,
            template=instance.template.name,
            bindings=dict(instance.bindings),
        )

    def to_dict(self) -> dict:
        return {
            "text": self.text,
            "path_length": self.path_length,
            "template": self.template,
            "bindings": jsonable(self.bindings),
        }


@dataclass(frozen=True)
class ExplainResult:
    """The ranked explanations of one access (empty => suspicious)."""

    lid: Any
    explanations: tuple[ExplanationView, ...]

    @property
    def explained(self) -> bool:
        return bool(self.explanations)

    @property
    def suspicious(self) -> bool:
        """Unexplained accesses are candidate misuse (paper Section 1)."""
        return not self.explanations

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "explained": self.explained,
            "explanations": [e.to_dict() for e in self.explanations],
        }


# ----------------------------------------------------------------------
# patient report (the portal screen)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessView:
    """One access row of a patient's report."""

    lid: Any
    date: Any
    user: Any
    explanations: tuple[str, ...]

    @property
    def suspicious(self) -> bool:
        return not self.explanations

    def headline(self) -> str:
        if self.explanations:
            return self.explanations[0]
        return "No explanation found — you may report this access."

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "suspicious": self.suspicious,
            "explanations": list(self.explanations),
        }


@dataclass(frozen=True)
class PatientReport:
    """Every access to one patient's record, each with explanations."""

    patient: Any
    entries: tuple[AccessView, ...]

    def to_dict(self) -> dict:
        return {
            "patient": jsonable(self.patient),
            "entries": [e.to_dict() for e in self.entries],
        }


# ----------------------------------------------------------------------
# ingest (streaming)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestResult:
    """The outcome of streaming one access into the audited log."""

    lid: Any
    date: Any
    user: Any
    patient: Any
    explanations: tuple[ExplanationView, ...]
    alerted: bool

    @classmethod
    def from_streamed(
        cls, access: StreamedAccess, alerted: bool
    ) -> "IngestResult":
        return cls(
            lid=access.lid,
            date=access.date,
            user=access.user,
            patient=access.patient,
            explanations=tuple(
                ExplanationView.from_instance(i) for i in access.instances
            ),
            alerted=alerted,
        )

    @property
    def explained(self) -> bool:
        return bool(self.explanations)

    @property
    def suspicious(self) -> bool:
        return not self.explanations

    def headline(self) -> str:
        """The top-ranked explanation, or a no-explanation marker."""
        if self.explanations:
            return self.explanations[0].text
        return "no explanation found"

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "patient": jsonable(self.patient),
            "explained": self.explained,
            "alerted": self.alerted,
            "explanations": [e.to_dict() for e in self.explanations],
        }


# ----------------------------------------------------------------------
# compliance report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnexplainedView:
    """One unexplained access awaiting compliance review."""

    lid: Any
    date: Any
    user: Any
    patient: Any

    def to_dict(self) -> dict:
        return {
            "lid": jsonable(self.lid),
            "date": jsonable(self.date),
            "user": jsonable(self.user),
            "patient": jsonable(self.patient),
        }


@dataclass(frozen=True)
class AuditReport:
    """The compliance-office artifact: coverage plus the review queue."""

    total: int
    unexplained_count: int
    coverage: float
    queue: tuple[UnexplainedView, ...]
    user_risk: tuple[tuple[Any, int], ...]

    @property
    def explained_count(self) -> int:
        return self.total - self.unexplained_count

    def summary(self) -> str:
        """One-line coverage summary for the compliance dashboard."""
        return (
            f"{self.total} accesses; {self.explained_count} explained "
            f"({self.coverage:.1%}); {self.unexplained_count} in the "
            f"review queue"
        )

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "explained": self.explained_count,
            "unexplained": self.unexplained_count,
            "coverage": self.coverage,
            "queue": [e.to_dict() for e in self.queue],
            "user_risk": [
                {"user": jsonable(u), "unexplained": n} for u, n in self.user_risk
            ],
        }


# ----------------------------------------------------------------------
# mining
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MineRequest:
    """Mine explanation templates from the service's database."""

    algorithm: str = "one-way"
    support_fraction: float = 0.01
    max_length: int = 4
    max_tables: int = 3
    bridge_length: int = 2
    #: When True, mined templates are registered with the engine so they
    #: immediately participate in explain/report.
    register: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in MINING_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {MINING_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if not 0 < self.support_fraction <= 1:
            raise ValueError("support_fraction must be in (0, 1]")
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_tables < 1:
            raise ValueError("max_tables must be >= 1")
        if self.bridge_length < 1:
            raise ValueError("bridge_length must be >= 1")


@dataclass(frozen=True)
class MinedTemplateView:
    """One mined template: presentation fields plus the template object
    itself (excluded from ``to_dict``), so API consumers never reach into
    the raw mining result."""

    sql: str
    support: int
    length: int
    template: Any = field(repr=False, compare=False, default=None)

    def to_dict(self) -> dict:
        return {"sql": self.sql, "support": self.support, "length": self.length}


@dataclass(frozen=True)
class MineResult:
    """A mining run's output, with the raw result attached."""

    algorithm: str
    threshold: float
    templates: tuple[MinedTemplateView, ...]
    support_stats: dict
    raw: MiningResult = field(repr=False, compare=False)

    def library(self) -> TemplateLibrary:
        """The mined templates as a reviewable library (all *suggested*),
        ready for :meth:`TemplateLibrary.dump`/``save``."""
        return TemplateLibrary.from_mining_result(self.raw)

    def explanation_templates(self) -> tuple:
        """The mined :class:`ExplanationTemplate` objects, mining order."""
        return tuple(v.template for v in self.templates)

    def templates_by_length(self) -> dict[int, tuple[MinedTemplateView, ...]]:
        """Mined templates grouped by join-path length."""
        out: dict[int, list[MinedTemplateView]] = {}
        for view in self.templates:
            out.setdefault(view.length, []).append(view)
        return {length: tuple(views) for length, views in out.items()}

    def signatures(self) -> set:
        """Condition-set signatures of every mined template (the
        algorithm-agreement identity)."""
        return {v.template.signature() for v in self.templates}

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "threshold": self.threshold,
            "templates": [t.to_dict() for t in self.templates],
            "support_stats": jsonable(self.support_stats),
        }


__all__ = [
    "AccessView",
    "AuditReport",
    "ExplainRequest",
    "ExplainResult",
    "ExplanationView",
    "IngestResult",
    "MINING_ALGORITHMS",
    "MineRequest",
    "MineResult",
    "MinedTemplateView",
    "PatientReport",
    "UnexplainedView",
    "jsonable",
]
