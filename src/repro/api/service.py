"""The :class:`AuditService` facade — one thread-safe entry point.

The paper describes a single auditing *system*: explain accesses, alert
on unexplainable ones, mine new templates, report to the compliance
office.  Before this module those capabilities were five independently
wired classes, each duplicating database/template setup and each growing
its own tuning kwargs.  :class:`AuditService` owns all of it behind an
explicit lifecycle::

    from repro.api import AuditConfig, AuditService

    with AuditService.open("hospital/", config=AuditConfig()) as service:
        result = service.explain(lid=17)
        report = service.report()
        service.ingest("u0042", "p00017")

Concurrency model
-----------------
The service owns a writer-preferring readers-writer lock
(:class:`~repro.api.locks.RWLock`): ``explain``/``report``/``stats`` and
the other queries run concurrently as readers against the
delta-maintained caches, while ``ingest``/``mine``/template registration
serialize as writers.  With the default ``AuditConfig.eager_warm``, every
writer leaves the aggregate caches warm before releasing the lock, so
readers only ever *read* shared state — the first step toward
multi-worker serving.

Everything the service returns is a typed, frozen dataclass from
:mod:`repro.api.messages` with ``to_dict()`` for JSON serving.
"""

from __future__ import annotations

import datetime as dt
import os
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from ..audit.streaming import AccessMonitor
from ..core.engine import BatchExplanation, ExplanationEngine
from ..core.graph import SchemaGraph
from ..core.library import ReviewStatus, TemplateLibrary
from ..core.mining import BridgedMiner, MiningConfig, OneWayMiner, TwoWayMiner
from ..core.scan import LogScanner
from ..core.template import ExplanationTemplate
from ..db.backend import AnyDatabase, make_executor
from ..db.csvio import load_database
from ..db.optimizer import PlanCache
from ..db.sqlbackend import SqlDatabase, open_sql_database
from .config import AuditConfig
from .errors import UnsupportedOperationError
from .locks import RWLock
from .messages import (
    AccessView,
    AuditReport,
    ExplainRequest,
    ExplainResult,
    ExplanationView,
    IngestResult,
    MinedTemplateView,
    MineRequest,
    MineResult,
    PatientReport,
    ScanPage,
    ScanRequest,
    ScanState,
    UnexplainedView,
    assemble_partition,
    assemble_report,
    jsonable,
)

#: Callback type for unexplained-access alerts.
AlertHandler = Callable[[IngestResult], None]


def standard_templates(
    db: AnyDatabase, include_groups: bool = True
) -> list[ExplanationTemplate]:
    """The hand-crafted CareWeb template set (paper Section 5.3.1): event
    w/doctor templates, the repeat-access template, and — when a Groups
    table exists — the depth-1 collaborative-group templates, all with
    natural-language descriptions attached."""
    from ..audit.handcrafted import (
        all_event_user_templates,
        dataset_a_doctor_templates,
        group_templates,
        repeat_access_template,
    )
    from ..audit.nl import with_careweb_description
    from ..ehr.schema import build_careweb_graph

    graph = build_careweb_graph(db)
    templates = dataset_a_doctor_templates(graph)
    templates.extend(all_event_user_templates(graph))
    templates.append(repeat_access_template(graph))
    if include_groups and db.has_table("Groups"):
        templates.extend(group_templates(graph, depth=1))
    return [with_careweb_description(t) for t in templates]


def format_patient_report(report: PatientReport) -> str:
    """Plain-text portal screen for a :class:`PatientReport`, one access
    per block (shared by the single-node and sharded services)."""
    lines = [f"Access report for patient {report.patient}:"]
    if not report.entries:
        lines.append("  (no accesses recorded)")
    for entry in report.entries:
        flag = "  [!] " if entry.suspicious else "      "
        lines.append(f"{flag}{entry.lid}  {entry.date}  by {entry.user}")
        lines.append(f"        {entry.headline()}")
    return "\n".join(lines)


def resolve_templates(
    db: AnyDatabase,
    templates: Iterable[ExplanationTemplate]
    | TemplateLibrary
    | str
    | os.PathLike
    | None,
) -> list[ExplanationTemplate]:
    """Normalize every accepted ``templates`` form of ``open(...)`` into a
    concrete list: a path loads a saved library, a library contributes its
    production set, None means the standard hand-crafted CareWeb set.
    Shared by :class:`AuditService` and the sharded service so both
    resolve identically."""
    if isinstance(templates, (str, os.PathLike)):
        templates = TemplateLibrary.load(str(templates))
    if isinstance(templates, TemplateLibrary):
        templates, _fallback = templates.production_templates()
    elif templates is None:
        templates = standard_templates(db)
    return list(templates)


@dataclass(frozen=True)
class GroupsResult:
    """Outcome of :meth:`AuditService.build_groups`."""

    group_rows: int
    users: int
    max_depth: int
    density: float
    groups_per_depth: dict[int, int]
    hierarchy: Any = field(repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "group_rows": self.group_rows,
            "users": self.users,
            "max_depth": self.max_depth,
            "density": self.density,
            "groups_per_depth": jsonable(self.groups_per_depth),
        }


class AuditService:
    """The unified, thread-safe facade over the whole auditing system."""

    def __init__(
        self,
        db: AnyDatabase,
        templates: Iterable[ExplanationTemplate],
        config: AuditConfig,
        clock: Callable[[], Any] | None = None,
    ) -> None:
        self.db = db
        self.config = config
        #: Per-service LRU plan cache (bounded by the config; hit/miss
        #: counters surface through :meth:`stats`).
        self.plan_cache = PlanCache(max_size=config.plan_cache_size)
        executor = make_executor(
            db,
            distinct_reduction=config.distinct_reduction,
            predicate_pushdown=config.predicate_pushdown,
            plan_cache=self.plan_cache,
            vectorized=config.vectorized,
        )
        self.engine = ExplanationEngine(
            db,
            templates,
            log_table=config.log_table,
            log_id_attr=config.log_id_attr,
            use_batch_path=config.use_batch_path,
            executor=executor,
            semijoin_batch_min=config.semijoin_batch_min,
        )
        self._clock = clock
        self._monitor: AccessMonitor | None = None
        self._alert_handlers: list[AlertHandler] = []
        self._lock = RWLock()
        self._closed = False
        #: True when open() built the database itself (a SQLite database
        #: opened from a path/source), making close() close it too.
        self._owns_db = False
        if config.eager_warm:
            self._warm()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        db: AnyDatabase | str | os.PathLike,
        templates: Iterable[ExplanationTemplate]
        | TemplateLibrary
        | str
        | os.PathLike
        | None = None,
        config: AuditConfig | None = None,
        clock: Callable[[], Any] | None = None,
    ) -> "AuditService":
        """Open a service over a database (or a CSV database directory).

        ``templates`` may be an iterable of templates, a
        :class:`TemplateLibrary` (or a path to one saved with
        ``save``/``dump`` — approved entries are applied, falling back to
        suggested ones when nothing is approved yet), or None for the
        standard hand-crafted CareWeb set.  Usable as a context manager.

        With ``config.backend == "sqlite"``, a path ``db`` is streamed
        into the SQLite file at ``config.db_path`` (reused as-is when
        already ingested — the restart path) and every explanation query
        pushes down as SQL; an in-memory ``db`` object is copied in.  A
        :class:`~repro.db.sqlbackend.SqlDatabase` passed directly is
        used as-is regardless of ``config.backend``.
        """
        config = config if config is not None else AuditConfig()
        opened_sql = False
        if isinstance(db, (str, os.PathLike)):
            if config.backend == "sqlite":
                db = open_sql_database(str(db), config.db_path)
                opened_sql = True
            else:
                db = load_database(str(db), max_rows=config.max_table_rows)
        elif config.backend == "sqlite" and not isinstance(db, SqlDatabase):
            db = open_sql_database(db, config.db_path)
            opened_sql = True
        service = cls(db, resolve_templates(db, templates), config, clock=clock)
        service._owns_db = opened_sql
        return service

    @classmethod
    def from_engine(
        cls, engine: ExplanationEngine, config: AuditConfig | None = None
    ) -> "AuditService":
        """Wrap an existing engine (the compatibility-shim path).

        The engine's executor, caches, and template set are used as-is;
        nothing is eagerly warmed.
        """
        if config is None:
            config = AuditConfig(
                log_table=engine.log_table,
                log_id_attr=engine.log_id_attr,
                use_batch_path=engine.use_batch_path,
                semijoin_batch_min=engine.semijoin_batch_min,
                eager_warm=False,
            )
        service = cls.__new__(cls)
        service.db = engine.db
        service.config = config
        service.plan_cache = engine.executor.plan_cache
        service.engine = engine
        service._clock = None
        service._monitor = None
        service._alert_handlers = []
        service._lock = RWLock()
        service._closed = False
        service._owns_db = False
        return service

    def close(self) -> None:
        """End the lifecycle; subsequent calls raise RuntimeError.  A
        SQLite database the service opened itself is closed with it."""
        if not self._closed and self._owns_db:
            self.db.close()
        self._closed = True

    def __enter__(self) -> "AuditService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("AuditService is closed")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _warm(self) -> None:
        """Materialize the aggregate caches (explained set, unexplained
        queue) so subsequent readers never mutate shared state."""
        self.engine.unexplained_lids()

    def _monitor_instance(self) -> AccessMonitor:
        if self._monitor is None:
            self._monitor = AccessMonitor(
                self.engine,
                clock=self._clock,
                incremental=self.config.incremental_ingest,
                batch=self.config.batch_ingest,
            )
        return self._monitor

    def _dispatch_alerts(self, results: Sequence[IngestResult]) -> None:
        """Fire alert handlers outside the write lock (a handler may call
        back into the service as a reader)."""
        for result in results:
            if result.alerted:
                for handler in self._alert_handlers:
                    handler(result)

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def explain(self, request: ExplainRequest | Any) -> ExplainResult:
        """Why did this access happen?  Ranked explanation instances
        (ascending path length); empty means candidate misuse.

        Accepts an :class:`ExplainRequest` or a bare log id.
        """
        self._check_open()
        if not isinstance(request, ExplainRequest):
            request = ExplainRequest(lid=request)
        with self._lock.read_locked():
            instances = self.engine.explain(request.lid)
        if request.limit is not None:
            instances = instances[: request.limit]
        return ExplainResult(
            lid=request.lid,
            explanations=tuple(
                ExplanationView.from_instance(i) for i in instances
            ),
        )

    def patient_report(
        self, patient: Any, limit: int | None = None
    ) -> PatientReport:
        """Every access to one patient's record in time order, each with
        ranked explanations (the portal screen, paper Example 1.1)."""
        self._check_open()
        with self._lock.read_locked():
            log = self.db.table(self.config.log_table)
            schema = log.schema
            lid_i = schema.column_index(self.config.log_id_attr)
            date_i = schema.column_index("Date")
            user_i = schema.column_index("User")
            rows = sorted(
                log.lookup("Patient", patient),
                key=lambda r: (r[date_i], r[lid_i]),
            )
            if limit is not None:
                rows = rows[:limit]
            entries = []
            for row in rows:
                instances = self.engine.explain(row[lid_i])
                entries.append(
                    AccessView(
                        lid=row[lid_i],
                        date=row[date_i],
                        user=row[user_i],
                        explanations=tuple(i.render() for i in instances),
                    )
                )
        return PatientReport(patient=patient, entries=tuple(entries))

    def render_patient_report(
        self, patient: Any, limit: int | None = None
    ) -> str:
        """Plain-text portal screen, one access per block."""
        return format_patient_report(self.patient_report(patient, limit=limit))

    def _unexplained_queue_locked(self) -> tuple[UnexplainedView, ...]:
        """Queue assembly under an already-held read lock."""
        log = self.db.table(self.config.log_table)
        schema = log.schema
        lid_i = schema.column_index(self.config.log_id_attr)
        date_i = schema.column_index("Date")
        user_i = schema.column_index("User")
        patient_i = schema.column_index("Patient")
        unexplained = self.engine.unexplained_lids()
        rows = [r for r in log.rows() if r[lid_i] in unexplained]
        rows.sort(key=lambda r: (r[date_i], r[lid_i]))
        return tuple(
            UnexplainedView(
                lid=r[lid_i], date=r[date_i], user=r[user_i], patient=r[patient_i]
            )
            for r in rows
        )

    def unexplained_queue(self) -> tuple[UnexplainedView, ...]:
        """The unexplained review queue alone, oldest first (stable
        ``(date, lid)`` order) — :meth:`report` without the coverage and
        per-user aggregates, which is what the paginated wire endpoint
        serves page-by-page."""
        self._check_open()
        with self._lock.read_locked():
            return self._unexplained_queue_locked()

    def report(self, limit: int | None = None) -> AuditReport:
        """The compliance-office artifact: coverage, the unexplained
        review queue (oldest first, optionally capped), and per-user
        unexplained counts (always over the full queue)."""
        self._check_open()
        with self._lock.read_locked():
            queue_views = self._unexplained_queue_locked()
            total = len(self.engine.all_lids())
            coverage = self.engine.coverage()
        counts: dict[Any, int] = {}
        for view in queue_views:
            counts[view.user] = counts.get(view.user, 0) + 1
        queue = list(queue_views)
        if limit is not None:
            queue = queue[:limit]
        return AuditReport(
            total=total,
            unexplained_count=len(queue_views),
            coverage=coverage,
            queue=tuple(queue),
            user_risk=tuple(
                sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
            ),
        )

    # ------------------------------------------------------------------
    # resumable scans (web-preemption model)
    # ------------------------------------------------------------------
    def scan(self, request: ScanRequest | None = None) -> ScanPage:
        """One bounded slice of a resumable full-log scan.

        Runs for at most ``page_rows`` rows / ``quantum_seconds`` of
        wall clock (request overrides, else the config budgets) under a
        single short read-lock hold, then suspends into the returned
        page's :class:`ScanState`.  Passing that state back — to this
        service or to a *fresh* one over the same log — continues the
        walk; accumulating pages until ``done`` rebuilds the exact
        one-shot :meth:`report`/:meth:`explain_all` artifacts.
        """
        self._check_open()
        if request is None:
            request = ScanRequest()
        state = request.state if request.state is not None else ScanState()
        page_rows = (
            request.page_rows
            if request.page_rows is not None
            else self.config.scan_page_rows
        )
        quantum = (
            request.quantum_seconds
            if request.quantum_seconds is not None
            else self.config.scan_quantum_seconds
        )
        with self._lock.read_locked():
            result = LogScanner(self.engine).slice(
                state.after, page_rows, quantum
            )
        unexplained = tuple(
            UnexplainedView(
                lid=r.lid, date=r.date, user=r.user, patient=r.patient
            )
            for r in result.rows
            if not r.explained
        )
        return ScanPage(
            rows=len(result.rows),
            explained=tuple(r.lid for r in result.rows if r.explained),
            unexplained=unexplained,
            state=ScanState(
                after=result.after,
                seen=state.seen + len(result.rows),
                unexplained=state.unexplained + len(unexplained),
            ),
            done=result.done,
        )

    def scan_pages(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
        state: ScanState | None = None,
    ) -> Iterator[ScanPage]:
        """Iterate scan pages to completion (each slice is its own
        bounded lock hold, so writers interleave between pages).  Pass a
        suspended ``state`` to resume a walk mid-flight."""
        while True:
            page = self.scan(
                ScanRequest(
                    state=state,
                    page_rows=page_rows,
                    quantum_seconds=quantum_seconds,
                )
            )
            yield page
            if page.done:
                return
            state = page.state

    def scan_report(
        self,
        limit: int | None = None,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> AuditReport:
        """:meth:`report`, produced as a sequence of bounded slices —
        identical output, preemptable execution."""
        return assemble_report(
            self.scan_pages(page_rows, quantum_seconds), limit=limit
        )

    def scan_explain_all(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> BatchExplanation:
        """:meth:`explain_all`, produced as a sequence of bounded slices
        — the identical whole-log partition, preemptable execution."""
        return assemble_partition(self.scan_pages(page_rows, quantum_seconds))

    def summary(self) -> str:
        """The one-line coverage summary, from the warm aggregate caches
        alone — no queue materialization (cheap enough for a dashboard
        poll; :meth:`report` builds the full artifact)."""
        self._check_open()
        with self._lock.read_locked():
            total = len(self.engine.all_lids())
            unexplained = len(self.engine.unexplained_lids())
            coverage = self.engine.coverage()
        return (
            f"{total} accesses; {total - unexplained} explained "
            f"({coverage:.1%}); {unexplained} in the review queue"
        )

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template."""
        self._check_open()
        with self._lock.read_locked():
            return self.engine.coverage()

    def unexplained_lids(self) -> frozenset:
        """Accesses no template explains — the candidate-misuse set."""
        self._check_open()
        with self._lock.read_locked():
            return frozenset(self.engine.unexplained_lids())

    def explain_all(self) -> BatchExplanation:
        """The whole-log explained/unexplained partition (one batch
        semijoin per template) as a
        :class:`~repro.core.engine.BatchExplanation`."""
        self._check_open()
        with self._lock.read_locked():
            return self.engine.explain_all()

    def explain_batch(self, lids: Iterable[Any]) -> BatchExplanation:
        """Partition a set of log ids into explained/unexplained in one
        set-at-a-time pass (ids absent from the log are unexplained)."""
        self._check_open()
        with self._lock.read_locked():
            return self.engine.explain_batch(lids)

    def support_many(
        self, templates: Sequence[ExplanationTemplate]
    ) -> list[int]:
        """Distinct explained-access counts for the given templates (the
        mining *support* quantity); templates need not be registered."""
        self._check_open()
        with self._lock.read_locked():
            return self.engine.support_counts(templates)

    def explained_lids(self, template: ExplanationTemplate) -> frozenset:
        """Distinct log ids one template explains (evaluation helper; the
        template need not be registered with the service)."""
        self._check_open()
        with self._lock.read_locked():
            return frozenset(self.engine.explained_lids(template))

    def templates(self) -> tuple[ExplanationTemplate, ...]:
        """The registered (deduplicated) template set."""
        self._check_open()
        with self._lock.read_locked():
            return self.engine.templates

    def template_library(self) -> TemplateLibrary:
        """The registered templates as an all-approved library (they are
        in production use), ready for :meth:`TemplateLibrary.dump`."""
        self._check_open()
        library = TemplateLibrary()
        for template in self.templates():
            library.add(template, ReviewStatus.APPROVED)
        return library

    def save_templates(self, path: str) -> None:
        """Persist the registered templates as a versioned JSON library
        (reload with ``AuditService.open(db, templates=path)``)."""
        self.template_library().dump(path)

    def stats(self) -> dict:
        """Operational counters: plan-cache hit/miss, query counts, lock
        acquisitions, ingest counters, template/log sizes."""
        self._check_open()
        with self._lock.read_locked():
            monitor = self._monitor
            return {
                "log_rows": len(self.db.table(self.config.log_table)),
                "templates": len(self.engine.templates),
                "queries_executed": self.engine.executor.queries_executed,
                "plan_cache": self.plan_cache.stats(),
                "lock": self._lock.stats(),
                "ingest": monitor.stats() if monitor is not None else None,
                "config": self.config.to_dict(),
            }

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def on_alert(self, handler: AlertHandler) -> None:
        """Register a callback for unexplained ingested accesses (fired
        outside the write lock, after the ingest completes).  Inert when
        ``AuditConfig.alert_on_unexplained`` is False."""
        self._check_open()
        self._alert_handlers.append(handler)

    def ingest(
        self, user: Any, patient: Any, date: dt.datetime | None = None
    ) -> IngestResult:
        """Append one access to the audited log, explain it immediately,
        and alert when no explanation exists."""
        self._check_open()
        with self._lock.write_locked():
            access = self._monitor_instance().ingest(user, patient, date)
            if self.config.eager_warm:
                self._warm()
        result = IngestResult.from_streamed(
            access, access.suspicious and self.config.alert_on_unexplained
        )
        self._dispatch_alerts([result])
        return result

    def ingest_many(
        self, accesses: Sequence[tuple[Any, Any, dt.datetime | None]]
    ) -> list[IngestResult]:
        """Ingest a batch of ``(user, patient, date)`` accesses in one
        maintenance pass (strategy per ``AuditConfig.batch_ingest``)."""
        self._check_open()
        with self._lock.write_locked():
            streamed = self._monitor_instance().ingest_many(list(accesses))
            if self.config.eager_warm:
                self._warm()
        results = [
            IngestResult.from_streamed(
                a, a.suspicious and self.config.alert_on_unexplained
            )
            for a in streamed
        ]
        self._dispatch_alerts(results)
        return results

    def add_templates(
        self, templates: Iterable[ExplanationTemplate] | TemplateLibrary
    ) -> int:
        """Register more templates (from an iterable or a library's
        approved set); returns how many were offered."""
        self._check_open()
        if isinstance(templates, TemplateLibrary):
            templates = templates.approved_templates()
        templates = list(templates)
        with self._lock.write_locked():
            for template in templates:
                self.engine.add_template(template)
            if self.config.eager_warm:
                self._warm()
        return len(templates)

    def load_templates(self, path: str) -> int:
        """Register the approved templates of a saved library (JSON or
        SQL form); returns how many were offered."""
        return self.add_templates(TemplateLibrary.load(path))

    def mine(
        self, request: MineRequest, graph: SchemaGraph | None = None
    ) -> MineResult:
        """Mine frequent explanation templates from the service's own
        database (paper Section 3).  ``graph`` defaults to the standard
        CareWeb explanation graph; pass one for other schemas.  With
        ``request.register`` the mined templates join the engine."""
        self._check_open()
        db = self.db
        if isinstance(db, SqlDatabase):
            raise UnsupportedOperationError(
                "mine() is not available on the SQLite backend",
                hint=(
                    "mining walks the schema graph with in-memory support "
                    "counting; run it on AuditService.open(source) with the "
                    "memory backend over the same data, then register the "
                    "mined templates here with add_templates()"
                ),
            )
        with self._lock.write_locked():
            if graph is None:
                from ..ehr.schema import build_careweb_graph

                graph = build_careweb_graph(db)
            config = MiningConfig(
                support_fraction=request.support_fraction,
                max_length=request.max_length,
                max_tables=request.max_tables,
            )
            miners = {
                "one-way": lambda: OneWayMiner(db, graph, config),
                "two-way": lambda: TwoWayMiner(db, graph, config),
                "bridge": lambda: BridgedMiner(
                    db, graph, config, bridge_length=request.bridge_length
                ),
            }
            raw = miners[request.algorithm]().mine()
            if request.register:
                for mined in raw.templates:
                    self.engine.add_template(mined.template)
                if self.config.eager_warm:
                    self._warm()
        return MineResult(
            algorithm=raw.algorithm,
            threshold=raw.threshold,
            templates=tuple(
                MinedTemplateView(
                    sql=m.template.to_sql(),
                    support=m.support,
                    length=m.length,
                    template=m.template,
                )
                for m in raw.templates
            ),
            support_stats=dict(raw.support_stats),
            raw=raw,
        )

    def build_groups(self, max_depth: int = 8) -> GroupsResult:
        """Infer collaborative groups from the access log (paper Section
        4) and materialize the Groups table in the service's database."""
        self._check_open()
        db = self.db
        if isinstance(db, SqlDatabase):
            raise UnsupportedOperationError(
                "build_groups() is not available on the SQLite backend",
                hint=(
                    "group inference materializes an in-memory Groups table; "
                    "run it on AuditService.open(source) with the memory "
                    "backend, save the database, and reopen this service "
                    "over the updated source"
                ),
            )
        from ..groups.hierarchy import build_groups_table, hierarchy_from_log

        with self._lock.write_locked():
            hierarchy, access = hierarchy_from_log(db, max_depth=max_depth)
            build_groups_table(db, hierarchy)
            # Groups change what group templates can explain; rebuild.
            self.engine.invalidate_cache()
            if self.config.eager_warm:
                self._warm()
        return GroupsResult(
            group_rows=len(hierarchy.rows()),
            users=len(hierarchy.users()),
            max_depth=hierarchy.max_depth,
            density=access.density(),
            groups_per_depth={
                depth: len(hierarchy.groups_at(depth))
                for depth in range(hierarchy.max_depth + 1)
            },
            hierarchy=hierarchy,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"<AuditService {state} db={self.db.name!r} "
            f"templates={len(self.engine.templates)}>"
        )
