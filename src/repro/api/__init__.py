"""``repro.api`` — **the** public surface of the auditing system.

Everything an application (the CLI, the examples, a web tier) needs is
importable from here:

* :class:`AuditService` — the unified, thread-safe facade (explain,
  ingest, mine, report) with an explicit ``open(...)`` lifecycle;
* :class:`AuditConfig` — the single frozen config object absorbing every
  tuning knob (batch paths, semijoin threshold, pushdown, plan-cache
  size, ingest and alert policy);
* the typed request/response dataclasses of :mod:`repro.api.messages`,
  all JSON-ready via ``to_dict()``;
* :class:`TemplateLibrary` with versioned JSON ``dump``/``load`` so
  mined templates survive process restarts;
* curated re-exports of the building blocks (database substrate, schema
  graph, template builders, miners, group inference, evaluation study)
  so downstream code imports from one place.

Quickstart::

    from repro.api import AuditConfig, AuditService

    with AuditService.open("hospital/") as service:
        print(service.report(limit=10).summary())
        print(service.explain(17).to_dict())

The pre-``repro.api`` entry points (``ExplanationEngine``,
``AccessMonitor``, ``PatientPortal``, ``ComplianceAuditor``, the miners)
keep working via deprecation shims in :mod:`repro`.
"""

# the explanation-template toolchain
from typing import Any

from ..audit.handcrafted import (
    all_event_user_templates,
    dataset_a_doctor_templates,
    event_group_template,
    event_same_department_template,
    event_user_template,
    group_templates,
    repeat_access_template,
    same_department_templates,
)
from ..audit.nl import describe_careweb_path, with_careweb_description
from ..core.decoration import DecorationMiner, DecorationResult, group_depth_attr
from ..core.edges import EdgeKind, SchemaAttr, SchemaEdge
from ..core.graph import SchemaGraph
from ..core.instance import ExplanationInstance
from ..core.library import LibraryEntry, ReviewStatus, TemplateLibrary
from ..core.mining import (
    BridgedMiner,
    MinedTemplate,
    MiningConfig,
    MiningResult,
    OneWayMiner,
    TwoWayMiner,
)
from ..core.template import ExplanationTemplate
from ..db.csvio import load_database, save_database
from ..db.database import Database
from ..db.errors import CapacityError
from ..db.schema import ColumnType, TableSchema
from ..db.sqlbackend import SqlDatabase, open_sql_database

# evaluation and group inference
from ..evalx.accesses import lids_on_days, restrict_log
from ..evalx.study import CareWebStudy
from ..groups.hierarchy import (
    build_groups_table,
    build_hierarchy,
    hierarchy_from_log,
)
from ..groups.matrix import access_matrix_from_log, similarity_graph
from ..groups.modularity import modularity

# the new unified service surface
from .config import AuditConfig
from .errors import (
    WIRE_VERSION,
    AuditApiError,
    InternalServerError,
    InvalidCursorError,
    InvalidRequestError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    UnsupportedOperationError,
    WireFormatError,
    error_from_wire,
)
from .locks import RWLock
from .messages import (
    MINING_ALGORITHMS,
    WIRE_KINDS,
    AccessView,
    AuditReport,
    ExplainRequest,
    ExplainResult,
    ExplanationView,
    IngestResult,
    MinedTemplateView,
    MineRequest,
    MineResult,
    PatientReport,
    ScanPage,
    ScanRequest,
    ScanState,
    UnexplainedView,
    assemble_partition,
    assemble_report,
    from_wire,
    jsonable,
    temporal,
    to_wire,
)
from .service import AuditService, GroupsResult, standard_templates
from .sharded import ShardedAuditService, open_service


def __getattr__(name: str) -> Any:
    """Lazy re-exports that would otherwise close an import cycle
    (``evalx.experiments`` builds on this package)."""
    if name == "write_report":
        from ..evalx.reportgen import write_report

        return write_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MINING_ALGORITHMS",
    "WIRE_KINDS",
    "WIRE_VERSION",
    "AccessView",
    "AuditApiError",
    "AuditConfig",
    "AuditReport",
    "AuditService",
    "BridgedMiner",
    "CapacityError",
    "CareWebStudy",
    "ColumnType",
    "Database",
    "DecorationMiner",
    "DecorationResult",
    "EdgeKind",
    "ExplainRequest",
    "ExplainResult",
    "ExplanationInstance",
    "ExplanationTemplate",
    "ExplanationView",
    "GroupsResult",
    "IngestResult",
    "InternalServerError",
    "InvalidCursorError",
    "InvalidRequestError",
    "LibraryEntry",
    "MineRequest",
    "MineResult",
    "MinedTemplate",
    "MinedTemplateView",
    "MiningConfig",
    "MiningResult",
    "MethodNotAllowedError",
    "NotFoundError",
    "OneWayMiner",
    "PatientReport",
    "PayloadTooLargeError",
    "RWLock",
    "ReviewStatus",
    "ScanPage",
    "ScanRequest",
    "ScanState",
    "SchemaAttr",
    "SchemaEdge",
    "SchemaGraph",
    "ShardedAuditService",
    "SqlDatabase",
    "TableSchema",
    "TemplateLibrary",
    "TwoWayMiner",
    "UnexplainedView",
    "UnsupportedOperationError",
    "WireFormatError",
    "access_matrix_from_log",
    "all_event_user_templates",
    "assemble_partition",
    "assemble_report",
    "build_groups_table",
    "build_hierarchy",
    "dataset_a_doctor_templates",
    "describe_careweb_path",
    "error_from_wire",
    "event_group_template",
    "event_same_department_template",
    "event_user_template",
    "from_wire",
    "group_depth_attr",
    "group_templates",
    "hierarchy_from_log",
    "jsonable",
    "lids_on_days",
    "load_database",
    "modularity",
    "open_service",
    "open_sql_database",
    "repeat_access_template",
    "restrict_log",
    "same_department_templates",
    "save_database",
    "similarity_graph",
    "standard_templates",
    "temporal",
    "to_wire",
    "with_careweb_description",
    "write_report",
]
