"""Sharded scatter-gather execution: the multi-core audit service.

The explanation workload is embarrassingly partitionable: every template
is anchored on the accessing user and the *patient* whose record was
touched, and every log self-join in the template language equates the
``Patient`` attribute — so hash-partitioning the log by patient
(:func:`repro.db.sharding.partition_by_patient`) lets each shard be
explained entirely locally.  :class:`ShardedAuditService` exploits that:

* **state** — each shard owns a full columnar table set for the log,
  its own :class:`~repro.db.executor.Executor`,
  :class:`~repro.db.optimizer.PlanCache`, delta-maintained
  :class:`~repro.core.engine.ExplanationEngine`, and
  :class:`~repro.audit.streaming.AccessMonitor`; the clinical event
  tables are shared (read-only under the audit workload);
* **scatter** — ``explain_all``/``explain_batch``/``report``/
  ``coverage``/mining-support calls fan out over every shard through a
  ``concurrent.futures`` pool; ``patient_report`` and ``ingest`` route
  straight to the owning shard;
* **gather** — per-shard explained/unexplained partitions are disjoint
  by construction, so merging is set union and count addition; results
  are *identical* to the single-node :class:`~repro.api.AuditService`
  (pinned by ``tests/test_sharded_differential.py``).

Two executor kinds (``AuditConfig.executor_kind``):

* ``"thread"`` (default) — shard state lives in-process; the scatter
  pool is a ``ThreadPoolExecutor``.  Cheap to open, zero serialization,
  but CPU-bound evaluation shares the GIL: right for small deployments
  and for I/O-adjacent serving tiers.
* ``"process"`` — each shard is pinned to a dedicated single-worker
  ``ProcessPoolExecutor`` whose initializer builds the shard state
  inside the worker; every operation on that shard runs in its process.
  True multi-core evaluation (``benchmarks/bench_sharded_explain.py``
  demands >= 2x on >= 4 cores); the one-time cost is shipping each shard
  payload to its worker.

The global log-id sequence is owned by the parent service (shard
monitors append caller-assigned ids via
:meth:`~repro.audit.streaming.AccessMonitor.ingest_prepared`), so
ingest results — ids, timestamps, alert order — are byte-identical to
the unsharded service.

Writer operations the sharded layout cannot partition (template mining,
group inference) intentionally raise: run them on a single-node service
over the same database, then broadcast the outcome with
:meth:`ShardedAuditService.add_templates`.
"""

from __future__ import annotations

import datetime as dt
import multiprocessing as mp
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, NoReturn

from ..audit.streaming import AccessMonitor, StreamedAccess
from ..core.engine import BatchExplanation, ExplanationEngine
from ..core.instance import rank_instances
from ..core.library import TemplateLibrary
from ..core.scan import LogScanner
from ..core.template import ExplanationTemplate
from ..db.backend import AnyDatabase, AnyTable, make_executor
from ..db.csvio import load_database
from ..db.database import Database
from ..db.optimizer import PlanCache
from ..db.sharding import partition_by_patient, shard_of
from ..db.sqlbackend import SqlDatabase, open_sql_database, shard_db_path
from .config import AuditConfig
from .errors import UnsupportedOperationError
from .locks import RWLock
from .messages import (
    AccessView,
    AuditReport,
    ExplainRequest,
    ExplainResult,
    ExplanationView,
    IngestResult,
    PatientReport,
    ScanPage,
    ScanRequest,
    ScanState,
    UnexplainedView,
    assemble_partition,
    assemble_report,
)
from .service import AuditService, format_patient_report, resolve_templates

#: Callback type for unexplained-access alerts (parent-side).
AlertHandler = Callable[[IngestResult], None]

#: Partition-key attribute of the audited log.
PATIENT_ATTR = "Patient"


# ----------------------------------------------------------------------
# shard-local state and operations
#
# One implementation shared by both executor kinds: the thread backend
# calls these functions on in-process state, the process backend calls
# the very same functions on worker-resident state — which is what makes
# thread/process equivalence a structural property rather than a testing
# aspiration.  Every return value is built from picklable primitives.
# ----------------------------------------------------------------------
@dataclass
class ShardState:
    """Everything one shard owns: database, engine, monitor, config."""

    index: int
    db: AnyDatabase
    config: AuditConfig
    engine: ExplanationEngine
    monitor: AccessMonitor


def build_shard_state(
    index: int,
    db: AnyDatabase,
    templates: Sequence[ExplanationTemplate],
    config: AuditConfig,
) -> ShardState:
    """Construct one shard's engine stack exactly the way
    :class:`~repro.api.AuditService` builds its single-node stack — same
    executor toggles, a private LRU plan cache, optional eager warm.

    Under ``config.backend == "sqlite"`` the in-memory shard partition is
    first converted to (or, on restart, reused from) the shard's private
    SQLite database: ``shard_db_path(config.db_path, index)`` derives one
    file per shard, and ``None`` keeps each shard in SQLite's private
    memory.  The conversion runs *here* — inside the worker process for
    the process executor kind — so every SQLite connection is opened
    post-fork."""
    if config.backend == "sqlite" and not isinstance(db, SqlDatabase):
        db = open_sql_database(db, shard_db_path(config.db_path, index))
    plan_cache = PlanCache(max_size=config.plan_cache_size)
    executor = make_executor(
        db,
        distinct_reduction=config.distinct_reduction,
        predicate_pushdown=config.predicate_pushdown,
        plan_cache=plan_cache,
        vectorized=config.vectorized,
    )
    engine = ExplanationEngine(
        db,
        templates,
        log_table=config.log_table,
        log_id_attr=config.log_id_attr,
        use_batch_path=config.use_batch_path,
        executor=executor,
        semijoin_batch_min=config.semijoin_batch_min,
    )
    monitor = AccessMonitor(
        engine,
        incremental=config.incremental_ingest,
        batch=config.batch_ingest,
    )
    if config.eager_warm:
        engine.unexplained_lids()
    return ShardState(
        index=index, db=db, config=config, engine=engine, monitor=monitor
    )


def _log_columns(state: ShardState) -> tuple[AnyTable, tuple[int, int, int, int]]:
    log = state.db.table(state.config.log_table)
    schema = log.schema
    return log, (
        schema.column_index(state.config.log_id_attr),
        schema.column_index("Date"),
        schema.column_index("User"),
        schema.column_index(PATIENT_ATTR),
    )


def _op_ping(state: ShardState) -> int:
    """Force worker start-up (and eager warm) at open time."""
    return state.index


def _op_next_lid(state: ShardState) -> int:
    """The shard monitor's next log id.  On a fresh partition this equals
    the parent's own counter; after a SQLite restart-reopen a shard file
    may hold previously ingested rows the (re-partitioned) source never
    saw, so the parent takes the max over every shard at open time."""
    return state.monitor._next_lid


def _op_counts(state: ShardState) -> tuple[int, int]:
    return state.engine.coverage_counts()


def _op_unexplained(state: ShardState) -> set:
    return set(state.engine.unexplained_lids())


def _op_explain_all(state: ShardState) -> tuple[frozenset, frozenset]:
    result = state.engine.explain_all()
    return result.explained, result.unexplained


def _op_explain_batch(
    state: ShardState, batch: frozenset
) -> tuple[frozenset, frozenset]:
    local = set(batch) & state.engine.all_lids()
    result = state.engine.explain_batch(local)
    return result.explained, result.unexplained


def _op_explain(state: ShardState, lid: Any) -> list:
    # Only the owning shard can hold the lid (shard logs are disjoint);
    # answering from the cached lid universe keeps the scatter O(1) on
    # every non-owner instead of O(templates) point queries.
    if lid not in state.engine.all_lids():
        return []
    return state.engine.explain(lid)


def _op_patient_report(state: ShardState, patient: Any, limit: int | None) -> tuple:
    log, (lid_i, date_i, user_i, _patient_i) = _log_columns(state)
    rows = sorted(
        log.lookup(PATIENT_ATTR, patient),
        key=lambda r: (r[date_i], r[lid_i]),
    )
    if limit is not None:
        rows = rows[:limit]
    entries = []
    for row in rows:
        instances = state.engine.explain(row[lid_i])
        entries.append(
            AccessView(
                lid=row[lid_i],
                date=row[date_i],
                user=row[user_i],
                explanations=tuple(i.render() for i in instances),
            )
        )
    return tuple(entries)


def _op_report_rows(state: ShardState) -> tuple[int, list[tuple]]:
    log, (lid_i, date_i, user_i, patient_i) = _log_columns(state)
    unexplained = state.engine.unexplained_lids()
    total = len(state.engine.all_lids())
    rows = [
        (r[lid_i], r[date_i], r[user_i], r[patient_i])
        for r in log.rows()
        if r[lid_i] in unexplained
    ]
    return total, rows


def _op_scan_slice(
    state: ShardState,
    after: tuple | None,
    page_rows: int,
    quantum_seconds: float | None,
) -> tuple[list[tuple], bool]:
    """One bounded scan slice of this shard's log: up to ``page_rows``
    classified rows past ``after`` in ``(date, lid)`` order, plus the
    shard's done flag.  The parent re-merges and re-cuts globally."""
    result = LogScanner(state.engine).slice(after, page_rows, quantum_seconds)
    rows = [
        (r.lid, r.date, r.user, r.patient, r.explained) for r in result.rows
    ]
    return rows, result.done


def _op_explained_lids(state: ShardState, template: ExplanationTemplate) -> set:
    return set(state.engine.explained_lids(template))


def _op_support_counts(
    state: ShardState, templates: Sequence[ExplanationTemplate]
) -> list[int]:
    return state.engine.support_counts(templates)


def _op_templates(state: ShardState) -> tuple:
    return state.engine.templates


def _op_add_templates(
    state: ShardState, templates: Sequence[ExplanationTemplate]
) -> int:
    for template in templates:
        state.engine.add_template(template)
    if state.config.eager_warm:
        state.engine.unexplained_lids()
    return len(templates)


def _op_ingest_rows(state: ShardState, rows: Sequence[tuple]) -> list[StreamedAccess]:
    out = state.monitor.ingest_prepared(list(rows))
    if state.config.eager_warm:
        state.engine.unexplained_lids()
    return out


def _op_stats(state: ShardState) -> dict:
    return {
        "shard": state.index,
        "log_rows": len(state.db.table(state.config.log_table)),
        "templates": len(state.engine.templates),
        "queries_executed": state.engine.executor.queries_executed,
        "plan_cache": state.engine.executor.plan_cache.stats(),
        "ingest": state.monitor.stats(),
    }


_OPS: dict[str, Callable] = {
    "ping": _op_ping,
    "next_lid": _op_next_lid,
    "counts": _op_counts,
    "unexplained": _op_unexplained,
    "explain_all": _op_explain_all,
    "explain_batch": _op_explain_batch,
    "explain": _op_explain,
    "patient_report": _op_patient_report,
    "report_rows": _op_report_rows,
    "scan_slice": _op_scan_slice,
    "explained_lids": _op_explained_lids,
    "support_counts": _op_support_counts,
    "templates": _op_templates,
    "add_templates": _op_add_templates,
    "ingest_rows": _op_ingest_rows,
    "stats": _op_stats,
}


# ----------------------------------------------------------------------
# shard backends
# ----------------------------------------------------------------------
class _ThreadShard:
    """Shard state in-process; operations run on a shared thread pool."""

    kind = "thread"

    def __init__(self, state: ShardState, pool: ThreadPoolExecutor) -> None:
        self._state = state
        self._pool = pool

    def submit(self, op: str, *args: Any) -> Future:
        return self._pool.submit(_OPS[op], self._state, *args)

    def close(self) -> None:  # the shared pool is owned by the service
        pass


#: Worker-process shard state, installed by :func:`_worker_init`.
_WORKER_STATE: ShardState | None = None


def _worker_init(
    index: int,
    db: Database,
    templates: Sequence[ExplanationTemplate],
    config: AuditConfig,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = build_shard_state(index, db, templates, config)


def _worker_call(op: str, args: tuple) -> Any:
    assert _WORKER_STATE is not None, "shard worker used before init"
    return _OPS[op](_WORKER_STATE, *args)


def _mp_context() -> mp.context.BaseContext | None:
    """Prefer fork (no payload pickling, instant start) where available;
    fall back to the platform default (spawn on macOS/Windows)."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


class _ProcessShard:
    """Shard state pinned inside a dedicated single-worker process.

    A one-worker pool per shard (rather than one big pool) is what makes
    stateful sharding work with ``concurrent.futures``: every operation
    submitted here runs in the process holding this shard's engine, so
    ingest mutations and cache warm-ups stay with their shard.
    """

    kind = "process"

    def __init__(
        self,
        index: int,
        db: Database,
        templates: Sequence[ExplanationTemplate],
        config: AuditConfig,
    ) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=_mp_context(),
            initializer=_worker_init,
            initargs=(index, db, templates, config),
        )

    def submit(self, op: str, *args: Any) -> Future:
        return self._pool.submit(_worker_call, op, args)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class ShardedAuditService:
    """Scatter-gather audit service over N patient-hash shards.

    Mirrors the :class:`~repro.api.AuditService` read/write surface
    (explain, reports, coverage, ingest, template registration) with
    identical results; see the module docstring for the execution model.
    Build one via :meth:`open` or :func:`open_service`.
    """

    def __init__(
        self,
        db: AnyDatabase,
        templates: Iterable[ExplanationTemplate],
        config: AuditConfig,
        clock: Callable[[], Any] | None = None,
    ) -> None:
        if isinstance(db, SqlDatabase):
            raise UnsupportedOperationError(
                "ShardedAuditService cannot partition a SqlDatabase source",
                hint="patient-hash partitioning walks an in-memory source; "
                "open the sharded service over the original Database or CSV "
                "directory with config.backend='sqlite' and each shard will "
                "convert its partition into a private SQLite database",
            )
        #: The source database (frozen at open time — reads and writes
        #: route through the shards; the shard logs, not this object,
        #: are authoritative once ingest begins).
        self.source_db = db
        self.config = config
        self._templates = list(templates)
        self._clock = clock if clock is not None else dt.datetime.now
        self._alert_handlers: list[AlertHandler] = []
        self._lock = RWLock()
        self._closed = False
        log = db.table(config.log_table)
        self._next_lid = AccessMonitor._initial_next_lid(
            log.distinct_values(config.log_id_attr)
        )
        shard_dbs = partition_by_patient(db, config.shards, log_table=config.log_table)
        self._scatter_pool: ThreadPoolExecutor | None = None
        if config.executor_kind == "process":
            self._shards: list = [
                _ProcessShard(i, sdb, self._templates, config)
                for i, sdb in enumerate(shard_dbs)
            ]
        else:
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=config.effective_parallelism,
                thread_name_prefix="repro-shard",
            )
            self._shards = [
                _ThreadShard(
                    build_shard_state(i, sdb, self._templates, config),
                    self._scatter_pool,
                )
                for i, sdb in enumerate(shard_dbs)
            ]
        # Start (and eagerly warm, when configured) every worker now so
        # open() surfaces shard construction errors, not the first query.
        self._scatter("ping")
        # Reconcile the global id sequence with the shards: a reopened
        # SQLite shard file may hold ingested rows beyond the source log.
        self._next_lid = max([self._next_lid, *self._scatter("next_lid")])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        db: AnyDatabase | str | os.PathLike,
        templates: Iterable[ExplanationTemplate]
        | TemplateLibrary
        | str
        | os.PathLike
        | None = None,
        config: AuditConfig | None = None,
        clock: Callable[[], Any] | None = None,
    ) -> "ShardedAuditService":
        """Open a sharded service over a database (or CSV directory);
        ``templates`` forms and defaults match ``AuditService.open``.

        The source always loads (or arrives) in memory — patient-hash
        partitioning walks in-memory tables — and under
        ``config.backend == "sqlite"`` each shard then converts its
        partition into a private SQLite database inside
        :func:`build_shard_state`.  The memory backend's
        ``max_table_rows`` cap applies to the source load; the SQLite
        backend lifts it (the in-memory source is transient there)."""
        config = config if config is not None else AuditConfig()
        if isinstance(db, (str, os.PathLike)):
            max_rows = (
                config.max_table_rows if config.backend == "memory" else None
            )
            db = load_database(str(db), max_rows=max_rows)
        return cls(db, resolve_templates(db, templates), config, clock=clock)

    def close(self) -> None:
        """Shut down shard workers; subsequent calls raise RuntimeError."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedAuditService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedAuditService is closed")

    # ------------------------------------------------------------------
    # scatter-gather plumbing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of patient-hash shards."""
        return len(self._shards)

    def shard_for(self, patient: Any) -> int:
        """The shard owning a patient's accesses."""
        return shard_of(patient, len(self._shards))

    def _scatter(self, op: str, *args: Any) -> list:
        """Run one operation on every shard concurrently; results arrive
        in shard order (gather preserves placement, not completion)."""
        futures = [shard.submit(op, *args) for shard in self._shards]
        return [f.result() for f in futures]

    def _on_shard(self, index: int, op: str, *args: Any) -> Any:
        return self._shards[index].submit(op, *args).result()

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def explain(self, request: ExplainRequest | Any) -> ExplainResult:
        """Why did this access happen?  Scatter to every shard (only the
        owner can answer — shard logs are disjoint) and rank the merged
        instances exactly as the single-node service does."""
        self._check_open()
        if not isinstance(request, ExplainRequest):
            request = ExplainRequest(lid=request)
        with self._lock.read_locked():
            gathered = self._scatter("explain", request.lid)
        instances = rank_instances(
            [inst for per_shard in gathered for inst in per_shard]
        )
        if request.limit is not None:
            instances = instances[: request.limit]
        return ExplainResult(
            lid=request.lid,
            explanations=tuple(
                ExplanationView.from_instance(i) for i in instances
            ),
        )

    def patient_report(
        self, patient: Any, limit: int | None = None
    ) -> PatientReport:
        """Route to the one shard owning the patient — sharding's best
        case: the portal screen costs one shard, not the fleet."""
        self._check_open()
        with self._lock.read_locked():
            entries = self._on_shard(
                self.shard_for(patient), "patient_report", patient, limit
            )
        return PatientReport(patient=patient, entries=tuple(entries))

    def render_patient_report(
        self, patient: Any, limit: int | None = None
    ) -> str:
        """Plain-text portal screen, one access per block."""
        return format_patient_report(self.patient_report(patient, limit=limit))

    def unexplained_queue(self) -> tuple[UnexplainedView, ...]:
        """The unexplained review queue alone in the stable ``(date,
        lid)`` order, merged from per-shard rows — :meth:`report` without
        the coverage and per-user aggregates (the paginated wire
        endpoint's surface)."""
        self._check_open()
        with self._lock.read_locked():
            gathered = self._scatter("report_rows")
        rows = [row for _, shard_rows in gathered for row in shard_rows]
        rows.sort(key=lambda r: (r[1], r[0]))
        return tuple(
            UnexplainedView(lid=lid, date=date, user=user, patient=patient)
            for lid, date, user, patient in rows
        )

    def report(self, limit: int | None = None) -> AuditReport:
        """The compliance-office artifact, merged from per-shard
        partitions: totals add, unexplained queues concatenate and
        re-sort, per-user counts aggregate over the full queue."""
        self._check_open()
        with self._lock.read_locked():
            gathered = self._scatter("report_rows")
        total = sum(t for t, _ in gathered)
        rows = [row for _, shard_rows in gathered for row in shard_rows]
        rows.sort(key=lambda r: (r[1], r[0]))
        counts: dict[Any, int] = {}
        for _lid, _date, user, _patient in rows:
            counts[user] = counts.get(user, 0) + 1
        queue = [
            UnexplainedView(lid=lid, date=date, user=user, patient=patient)
            for lid, date, user, patient in rows
        ]
        if limit is not None:
            queue = queue[:limit]
        coverage = (total - len(rows)) / total if total else 0.0
        return AuditReport(
            total=total,
            unexplained_count=len(rows),
            coverage=coverage,
            queue=tuple(queue),
            user_risk=tuple(
                sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
            ),
        )

    # ------------------------------------------------------------------
    # resumable scans (web-preemption model)
    # ------------------------------------------------------------------
    def scan(self, request: ScanRequest | None = None) -> ScanPage:
        """One bounded slice of a resumable full-log scan, scattered.

        Each shard scans up to the page budget past the suspended
        position; the gather merge-sorts the disjoint per-shard rows and
        cuts at the smallest position a quantum-suspended shard reached
        (a row past that cut cannot be proven next in the global order),
        then applies the global row budget.  Pages are identical to the
        single-node :meth:`AuditService.scan` ones — pinned by the scan
        differential suite.
        """
        self._check_open()
        if request is None:
            request = ScanRequest()
        state = request.state if request.state is not None else ScanState()
        page_rows = (
            request.page_rows
            if request.page_rows is not None
            else self.config.scan_page_rows
        )
        quantum = (
            request.quantum_seconds
            if request.quantum_seconds is not None
            else self.config.scan_quantum_seconds
        )
        with self._lock.read_locked():
            gathered = self._scatter(
                "scan_slice", state.after, page_rows, quantum
            )
        merged: list[tuple] = []
        cut: tuple | None = None
        for rows, shard_done in gathered:
            merged.extend(rows)
            if not shard_done:
                # A suspended shard always returns >= 1 row; it only
                # vouches for the order up to its last scanned key.
                last = (rows[-1][1], rows[-1][0])
                cut = last if cut is None or last < cut else cut
        merged.sort(key=lambda r: (r[1], r[0]))
        eligible = (
            merged
            if cut is None
            else [r for r in merged if (r[1], r[0]) <= cut]
        )
        taken = eligible[:page_rows]
        done = all(shard_done for _, shard_done in gathered) and len(
            taken
        ) == len(merged)
        unexplained = tuple(
            UnexplainedView(lid=lid, date=date, user=user, patient=patient)
            for lid, date, user, patient, explained in taken
            if not explained
        )
        return ScanPage(
            rows=len(taken),
            explained=tuple(
                lid for lid, _date, _user, _patient, exp in taken if exp
            ),
            unexplained=unexplained,
            state=ScanState(
                after=(taken[-1][1], taken[-1][0]) if taken else state.after,
                seen=state.seen + len(taken),
                unexplained=state.unexplained + len(unexplained),
            ),
            done=done,
        )

    def scan_pages(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
        state: ScanState | None = None,
    ) -> Iterator[ScanPage]:
        """Iterate scan pages to completion (each slice is its own
        bounded lock hold).  Pass a suspended ``state`` to resume."""
        while True:
            page = self.scan(
                ScanRequest(
                    state=state,
                    page_rows=page_rows,
                    quantum_seconds=quantum_seconds,
                )
            )
            yield page
            if page.done:
                return
            state = page.state

    def scan_report(
        self,
        limit: int | None = None,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> AuditReport:
        """:meth:`report`, produced as a sequence of bounded slices —
        identical output, preemptable execution."""
        return assemble_report(
            self.scan_pages(page_rows, quantum_seconds), limit=limit
        )

    def scan_explain_all(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> BatchExplanation:
        """:meth:`explain_all`, produced as a sequence of bounded slices
        — the identical whole-log partition, preemptable execution."""
        return assemble_partition(self.scan_pages(page_rows, quantum_seconds))

    def summary(self) -> str:
        """The one-line coverage summary from per-shard counts alone."""
        self._check_open()
        total, unexplained, _ = self._counts()
        coverage = (total - unexplained) / total if total else 0.0
        return (
            f"{total} accesses; {total - unexplained} explained "
            f"({coverage:.1%}); {unexplained} in the review queue"
        )

    def _counts(self) -> tuple[int, int, list[tuple[int, int]]]:
        with self._lock.read_locked():
            per_shard = self._scatter("counts")
        total = sum(t for t, _ in per_shard)
        unexplained = sum(u for _, u in per_shard)
        return total, unexplained, per_shard

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template —
        counts add across disjoint shards, divide once."""
        self._check_open()
        total, unexplained, _ = self._counts()
        if total == 0:
            return 0.0
        return (total - unexplained) / total

    def unexplained_lids(self) -> frozenset:
        """Union of the shards' candidate-misuse sets."""
        self._check_open()
        with self._lock.read_locked():
            gathered = self._scatter("unexplained")
        return frozenset().union(*gathered) if gathered else frozenset()

    def explain_all(self) -> BatchExplanation:
        """The whole-log explained/unexplained partition, one scatter:
        every shard runs its set-at-a-time semijoin pass concurrently and
        the disjoint partitions union into the global one."""
        self._check_open()
        with self._lock.read_locked():
            gathered = self._scatter("explain_all")
        explained: set = set()
        unexplained: set = set()
        for shard_explained, shard_unexplained in gathered:
            explained |= shard_explained
            unexplained |= shard_unexplained
        return BatchExplanation(frozenset(explained), frozenset(unexplained))

    def explain_batch(self, lids: Iterable[Any]) -> BatchExplanation:
        """Partition a set of log ids into explained/unexplained.  Each
        shard evaluates the slice of the batch it owns; ids no shard
        holds are unexplained (matching the single-node semantics)."""
        self._check_open()
        batch = frozenset(lids)
        if not batch:
            return BatchExplanation(frozenset(), frozenset())
        with self._lock.read_locked():
            gathered = self._scatter("explain_batch", batch)
        explained: set = set()
        for shard_explained, _shard_unexplained in gathered:
            explained |= shard_explained
        return BatchExplanation(
            frozenset(explained), frozenset(batch - explained)
        )

    def explained_lids(self, template: ExplanationTemplate) -> frozenset:
        """Distinct log ids one template explains, unioned over shards
        (the template need not be registered with the service)."""
        self._check_open()
        with self._lock.read_locked():
            gathered = self._scatter("explained_lids", template)
        return frozenset().union(*gathered) if gathered else frozenset()

    def support_many(
        self, templates: Sequence[ExplanationTemplate]
    ) -> list[int]:
        """Mining support counts: shard logs are disjoint, so each
        template's distinct explained-access count is the per-shard sum —
        one scatter evaluates every template on every shard."""
        self._check_open()
        templates = list(templates)
        if not templates:
            return []
        with self._lock.read_locked():
            gathered = self._scatter("support_counts", templates)
        return [sum(counts[i] for counts in gathered) for i in range(len(templates))]

    def templates(self) -> tuple[ExplanationTemplate, ...]:
        """The registered (deduplicated) template set (every shard holds
        the same set; shard 0 answers)."""
        self._check_open()
        with self._lock.read_locked():
            return tuple(self._on_shard(0, "templates"))

    def template_library(self) -> TemplateLibrary:
        """The registered templates as an all-approved library (facade
        mirror; they are in production use on every shard)."""
        from ..core.library import ReviewStatus

        library = TemplateLibrary()
        for template in self.templates():
            library.add(template, ReviewStatus.APPROVED)
        return library

    def save_templates(self, path: str) -> None:
        """Persist the registered templates as a versioned JSON library
        (facade mirror)."""
        self.template_library().dump(path)

    def stats(self) -> dict:
        """Aggregated operational counters plus the per-shard breakdown."""
        self._check_open()
        with self._lock.read_locked():
            per_shard = self._scatter("stats")
        plan_cache = {
            key: sum(s["plan_cache"].get(key, 0) for s in per_shard)
            for key in ("size", "hits", "misses")
        }
        ingest_seen = sum(s["ingest"]["seen"] for s in per_shard)
        ingest = None
        if ingest_seen:
            ingest = {
                "seen": ingest_seen,
                "alerts": sum(s["ingest"]["alerts"] for s in per_shard),
                "total_queries": sum(
                    s["ingest"]["total_queries"] for s in per_shard
                ),
                "total_seconds": sum(
                    s["ingest"]["total_seconds"] for s in per_shard
                ),
            }
        return {
            "shards": len(self._shards),
            "executor_kind": self.config.executor_kind,
            "log_rows": sum(s["log_rows"] for s in per_shard),
            "templates": per_shard[0]["templates"] if per_shard else 0,
            "queries_executed": sum(s["queries_executed"] for s in per_shard),
            "plan_cache": plan_cache,
            "lock": self._lock.stats(),
            "ingest": ingest,
            "per_shard": per_shard,
            "config": self.config.to_dict(),
        }

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def on_alert(self, handler: AlertHandler) -> None:
        """Register a parent-side callback for unexplained ingested
        accesses (fired outside the write lock, in ingest order)."""
        self._check_open()
        self._alert_handlers.append(handler)

    def _dispatch_alerts(self, results: Sequence[IngestResult]) -> None:
        for result in results:
            if result.alerted:
                for handler in self._alert_handlers:
                    handler(result)

    def ingest(
        self, user: Any, patient: Any, date: dt.datetime | None = None
    ) -> IngestResult:
        """Append one access: the parent assigns the global log id and
        timestamp, the owning shard appends, delta-maintains, and
        explains — the same result the unsharded service returns."""
        return self.ingest_many([(user, patient, date)])[0]

    def ingest_many(
        self, accesses: Sequence[tuple[Any, Any, dt.datetime | None]]
    ) -> list[IngestResult]:
        """Ingest a batch of ``(user, patient, date)`` accesses: global
        ids and timestamps are assigned in input order, rows are dealt to
        their owning shards, every involved shard runs ONE maintenance
        pass concurrently, and results return in input order."""
        self._check_open()
        accesses = list(accesses)
        if not accesses:
            return []
        with self._lock.write_locked():
            routed: dict[int, list[tuple]] = {}
            order: list[tuple[int, int]] = []  # (shard, position in shard)
            for user, patient, date in accesses:
                lid = self._next_lid
                self._next_lid += 1
                stamp = date if date is not None else self._clock()
                shard = self.shard_for(patient)
                rows = routed.setdefault(shard, [])
                order.append((shard, len(rows)))
                rows.append((lid, stamp, user, patient))
            futures = {
                shard: self._shards[shard].submit("ingest_rows", rows)
                for shard, rows in routed.items()
            }
            gathered = {shard: f.result() for shard, f in futures.items()}
        streamed = [gathered[shard][pos] for shard, pos in order]
        results = [
            IngestResult.from_streamed(
                a, a.suspicious and self.config.alert_on_unexplained
            )
            for a in streamed
        ]
        self._dispatch_alerts(results)
        return results

    def add_templates(
        self, templates: Iterable[ExplanationTemplate] | TemplateLibrary
    ) -> int:
        """Broadcast more templates to every shard (from an iterable or a
        library's approved set); returns how many were offered."""
        self._check_open()
        if isinstance(templates, TemplateLibrary):
            templates = templates.approved_templates()
        templates = list(templates)
        with self._lock.write_locked():
            self._scatter("add_templates", templates)
        return len(templates)

    def mine(self, *args: Any, **kwargs: Any) -> NoReturn:
        """Mining is a whole-database writer the patient partition cannot
        host; mine on a single-node service, then broadcast.  Raises the
        typed :class:`~repro.api.errors.UnsupportedOperationError` (an
        ``NotImplementedError`` subclass), which the HTTP server layer
        maps to 501."""
        raise UnsupportedOperationError(
            "mine() is not available on ShardedAuditService",
            hint="run it on AuditService.open(db) over the same database, "
            "then register the results here with add_templates()",
        )

    def build_groups(self, *args: Any, **kwargs: Any) -> NoReturn:
        """Group inference rewrites a shared table; same recipe as
        :meth:`mine` — build on a single-node service, reopen sharded."""
        raise UnsupportedOperationError(
            "build_groups() is not available on ShardedAuditService",
            hint="run it on AuditService.open(db) over the same database, "
            "then reopen the sharded service over the updated database",
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"<ShardedAuditService {state} shards={len(self._shards)} "
            f"executor={self.config.executor_kind!r}>"
        )


def open_service(
    db: AnyDatabase | str | os.PathLike,
    templates: Iterable[ExplanationTemplate]
    | TemplateLibrary
    | str
    | os.PathLike
    | None = None,
    config: AuditConfig | None = None,
    clock: Callable[[], Any] | None = None,
) -> AuditService | ShardedAuditService:
    """Open the right service for a config: ``shards == 1`` builds the
    single-node :class:`AuditService`, ``shards > 1`` the scatter-gather
    :class:`ShardedAuditService` — one call site for CLIs and web tiers
    that take the shard count from a flag."""
    config = config if config is not None else AuditConfig()
    if config.shards > 1:
        return ShardedAuditService.open(
            db, templates=templates, config=config, clock=clock
        )
    return AuditService.open(db, templates=templates, config=config, clock=clock)
