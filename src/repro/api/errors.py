"""The typed wire-error hierarchy of the public API.

Before the wire API, failures crossed layer boundaries as ad-hoc
``ValueError``/``KeyError``/``NotImplementedError`` instances — fine
in-process, useless on the wire, where a client needs a stable machine
code and an HTTP status.  Every error the serving tier can emit is an
:class:`AuditApiError` subclass carrying exactly that contract:

* ``code`` — a stable machine-readable identifier (``"invalid_request"``,
  ``"not_found"``, ...) clients can switch on;
* ``http_status`` — the HTTP status the server responds with;
* ``message`` — the human-readable description;
* ``details`` — optional structured context (e.g. a remediation hint).

``to_wire()`` renders the versioned error envelope the server sends::

    {"v": 1, "error": {"code": "not_found", "message": "..."}}

and :func:`error_from_wire` reconstructs the *same typed exception* on
the client side, so ``except NotFoundError:`` works identically against
an in-process service and a remote one — server and client share this
one serialization layer.
"""

from __future__ import annotations

from typing import Any

#: Version tag of every wire envelope (responses and errors alike).
WIRE_VERSION = 1


class AuditApiError(Exception):
    """Base of every wire-mappable API error."""

    #: Stable machine-readable identifier; subclasses override.
    code = "internal"
    #: HTTP status the server layer maps this error to.
    http_status = 500

    def __init__(self, message: str, *, details: dict | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.details = dict(details) if details else {}

    def to_dict(self) -> dict:
        """The ``error`` object of the wire envelope."""
        out: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            out["details"] = self.details
        return out

    def to_wire(self) -> dict:
        """The full versioned error envelope the server sends."""
        return {"v": WIRE_VERSION, "error": self.to_dict()}

    def __str__(self) -> str:
        hint = self.details.get("hint")
        if hint:
            return f"{self.message} ({hint})"
        return self.message


class InvalidRequestError(AuditApiError):
    """The request is malformed: bad parameter, bad body, bad value."""

    code = "invalid_request"
    http_status = 400


class WireFormatError(InvalidRequestError):
    """A wire envelope is unreadable: wrong version, kind, or shape."""

    code = "wire_format"


class InvalidCursorError(InvalidRequestError):
    """An opaque pagination cursor failed to decode or verify."""

    code = "invalid_cursor"


class NotFoundError(AuditApiError):
    """The requested route or resource does not exist."""

    code = "not_found"
    http_status = 404


class MethodNotAllowedError(AuditApiError):
    """The route exists but not under this HTTP method."""

    code = "method_not_allowed"
    http_status = 405


class PayloadTooLargeError(AuditApiError):
    """The request body exceeds the server's configured limit."""

    code = "payload_too_large"
    http_status = 413


class UnsupportedOperationError(AuditApiError, NotImplementedError):
    """The operation exists in the API but this deployment cannot run it
    (e.g. mining on a sharded service).  Subclasses
    ``NotImplementedError`` so pre-wire in-process callers keep working;
    the ``hint`` names the supported recipe.
    """

    code = "unsupported_operation"
    http_status = 501

    def __init__(
        self, message: str, *, hint: str | None = None, details: dict | None = None
    ) -> None:
        merged = dict(details) if details else {}
        if hint is not None:
            merged["hint"] = hint
        super().__init__(message, details=merged)

    @property
    def hint(self) -> str | None:
        """The remediation recipe, when one exists."""
        return self.details.get("hint")


class InternalServerError(AuditApiError):
    """An unexpected failure inside the service or server."""

    code = "internal"
    http_status = 500


#: ``code -> class`` registry :func:`error_from_wire` dispatches on.
ERROR_TYPES: dict[str, type[AuditApiError]] = {
    cls.code: cls
    for cls in (
        InvalidRequestError,
        WireFormatError,
        InvalidCursorError,
        NotFoundError,
        MethodNotAllowedError,
        PayloadTooLargeError,
        UnsupportedOperationError,
        InternalServerError,
    )
}


def error_from_wire(payload: Any, http_status: int | None = None) -> AuditApiError:
    """Reconstruct the typed exception from a wire error envelope.

    Unknown codes degrade to a generic :class:`AuditApiError` whose
    ``code``/``http_status`` mirror what the server sent — a newer server
    never crashes an older client's error handling.
    """
    if not isinstance(payload, dict) or not isinstance(payload.get("error"), dict):
        return InternalServerError(
            f"unreadable error envelope: {payload!r}"
        )
    error = payload["error"]
    code = error.get("code", "internal")
    message = error.get("message", "unknown error")
    details = error.get("details") or {}
    cls = ERROR_TYPES.get(code)
    if cls is None:
        out = AuditApiError(message, details=details)
        out.code = code
        if http_status is not None:
            out.http_status = http_status
        return out
    return cls(message, details=details)


__all__ = [
    "ERROR_TYPES",
    "WIRE_VERSION",
    "AuditApiError",
    "InternalServerError",
    "InvalidCursorError",
    "InvalidRequestError",
    "MethodNotAllowedError",
    "NotFoundError",
    "PayloadTooLargeError",
    "UnsupportedOperationError",
    "WireFormatError",
    "error_from_wire",
]
