"""The one configuration object of the public API.

Before ``repro.api``, every entry point grew its own tuning kwargs:
``ExplanationEngine(use_batch_path=...)``, ``AccessMonitor(batch=...,
incremental=...)``, ``Executor(predicate_pushdown=...,
distinct_reduction=...)``, a module-level semijoin threshold, and an
unbounded process-wide plan cache.  :class:`AuditConfig` absorbs all of
them into a single frozen, serializable dataclass that
:meth:`repro.api.AuditService.open` consumes — one place to read a
deployment's tuning, one dict to put in a config file.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any

from ..core.engine import SEMIJOIN_BATCH_MIN


@dataclass(frozen=True)
class AuditConfig:
    """Every tuning knob of an :class:`~repro.api.service.AuditService`.

    Frozen: derive variants with :meth:`replace`, serialize with
    :meth:`to_dict`, rebuild with :meth:`from_dict` (round-trip exact).
    """

    #: Name of the audited log table and its id attribute.
    log_table: str = "Log"
    log_id_attr: str = "Lid"

    #: Whole-log evaluation strategy: True routes through the
    #: set-at-a-time batch-semijoin path (one query per template), False
    #: keeps the per-template point path (the differential baseline).
    use_batch_path: bool = True
    #: Appended batches at least this large take the semijoin delta
    #: strategy when maintenance auto-selects.
    semijoin_batch_min: int = SEMIJOIN_BATCH_MIN

    #: Executor pipeline toggles (see :class:`repro.db.executor.Executor`).
    predicate_pushdown: bool = True
    distinct_reduction: bool = True
    #: Maximum number of memoized query plans; the service's LRU
    #: :class:`~repro.db.optimizer.PlanCache` evicts beyond this.
    plan_cache_size: int = 1024

    #: Ingest maintenance: True delta-patches caches per append, False
    #: restores the invalidate-everything baseline.
    incremental_ingest: bool = True
    #: Batched-ingest strategy: True forces batch semijoin, False forces
    #: per-row delta point queries, None lets the engine choose by size.
    batch_ingest: bool | None = None

    #: Alert policy: when False, registered alert handlers are never
    #: invoked (unexplained accesses are still counted and reported).
    alert_on_unexplained: bool = True

    #: Scatter-gather layout: number of patient-hash shards.  1 keeps the
    #: single in-process :class:`~repro.api.service.AuditService` layout;
    #: >1 makes :func:`repro.api.open_service` build a
    #: :class:`~repro.api.sharded.ShardedAuditService` whose shard
    #: databases each carry their own indexes and plan cache.
    shards: int = 1
    #: Shard executor: ``"thread"`` keeps every shard in-process and
    #: scatters over a thread pool (cheap, shares the GIL); ``"process"``
    #: pins each shard to its own worker process (true multi-core
    #: evaluation; shard state lives in the worker).
    executor_kind: str = "thread"
    #: Concurrent scatter width for the thread executor (the process
    #: executor always runs one worker per shard).  None means one thread
    #: per shard.
    parallelism: int | None = None

    #: Executor hot-path selection: True (the default) runs the
    #: vectorized join pipeline (columnar set-intersection probes,
    #: scalar-keyed hashmaps, C-level projections); False keeps the
    #: original per-row loops — the differential reference.
    vectorized: bool = True

    #: HTTP serving fleet width for ``repro-audit serve`` — number of
    #: worker processes sharing one listening port (SO_REUSEPORT, or a
    #: parent-bound inherited socket where unavailable).  None means one:
    #: the single in-process server.  Values > 1 require a service spec
    #: every worker process can open for itself (see
    #: :mod:`repro.server.supervisor`).
    workers: int | None = None

    #: Resumable-scan budgets (see :meth:`AuditService.scan`): the
    #: default row budget of one scan slice, and an optional wall-clock
    #: quantum in seconds after which a slice suspends early (None means
    #: row-bounded only).  Both can be overridden per request.
    scan_page_rows: int = 512
    scan_quantum_seconds: float | None = None

    #: Storage backend: ``"memory"`` audits inside the in-memory columnar
    #: :class:`~repro.db.table.Table` engine (fastest; log must fit in
    #: RAM); ``"sqlite"`` compiles every explanation query to SQL and
    #: pushes it down to a SQLite database (stdlib ``sqlite3``), lifting
    #: the RAM cap.  Both backends are pinned byte-identical by the
    #: differential suites; see ``docs/architecture.md``.
    backend: str = "memory"
    #: SQLite database file for ``backend="sqlite"``.  None keeps the
    #: database in SQLite's private memory (no file, no restart
    #: survival); a path persists state across process death, and a
    #: sharded service derives one file per shard from it
    #: (``audit.shard0.db``, ...).  Ignored by the memory backend.
    db_path: str | None = None
    #: Row cap applied to every in-memory table loaded through the CLI
    #: (the memory backend's explicit RAM ceiling).  Exceeding it raises
    #: :class:`~repro.db.errors.CapacityError`, pointing at the SQLite
    #: backend.  None (default) means uncapped; ignored under
    #: ``backend="sqlite"``.
    max_table_rows: int | None = None

    #: Warm the explained/unexplained aggregates inside ``open()`` (and
    #: after every writer operation), so concurrent readers hit immutable
    #: caches and never race to populate them.  Disable only for
    #: single-threaded, explain-one-access tools that cannot afford the
    #: up-front whole-log pass.
    eager_warm: bool = True

    def __post_init__(self) -> None:
        if not self.log_table:
            raise ValueError("log_table must be non-empty")
        if not self.log_id_attr:
            raise ValueError("log_id_attr must be non-empty")
        if self.semijoin_batch_min < 1:
            raise ValueError("semijoin_batch_min must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.batch_ingest not in (True, False, None):
            raise ValueError("batch_ingest must be True, False, or None")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.executor_kind not in ("thread", "process"):
            raise ValueError("executor_kind must be 'thread' or 'process'")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1 when given")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 when given")
        if self.scan_page_rows < 1:
            raise ValueError("scan_page_rows must be >= 1")
        if self.backend not in ("memory", "sqlite"):
            raise ValueError("backend must be 'memory' or 'sqlite'")
        if self.max_table_rows is not None and self.max_table_rows < 1:
            raise ValueError("max_table_rows must be >= 1 when given")
        if (
            self.scan_quantum_seconds is not None
            and not self.scan_quantum_seconds > 0
        ):
            raise ValueError("scan_quantum_seconds must be > 0 when given")

    @property
    def effective_parallelism(self) -> int:
        """The scatter width the thread executor actually uses."""
        if self.parallelism is not None:
            return min(self.parallelism, self.shards)
        return self.shards

    @property
    def effective_workers(self) -> int:
        """The serving-fleet width actually used (None means one)."""
        return self.workers if self.workers is not None else 1

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "AuditConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; every field is a scalar)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict, strict: bool = True) -> "AuditConfig":
        """Rebuild from :meth:`to_dict` output.

        In strict mode (the default) unknown keys are errors — a
        misspelled knob must not silently fall back to its default.  With
        ``strict=False`` unknown keys are dropped with a warning instead,
        so a config posted by a client built against a newer (or older)
        schema still opens a service with every knob this build knows.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            if strict:
                raise ValueError(
                    f"unknown AuditConfig fields: {unknown} (a misspelled "
                    f"knob would silently fall back to its default; pass "
                    f"strict=False to accept-and-warn on keys from other "
                    f"schema versions)"
                )
            warnings.warn(
                f"ignoring unknown AuditConfig fields: {unknown}",
                stacklevel=2,
            )
            data = {k: v for k, v in data.items() if k in known}
        return cls(**data)
